//! The peer-replicated in-memory hot checkpoint tier.
//!
//! Each save step, every rank pushes its (dirty-filtered) optimizer shard
//! to `K` peer ranks over the persistent [`ucp_collectives::exchange`]
//! mesh and installs a copy in its own bank. The placement is a simple
//! ring: rank `r` replicates to ranks `r+1 .. r+K` (mod world), so every
//! rank's state lives on `K + 1` distinct ranks and any single-rank
//! failure leaves a complete copy among the survivors. `K` consecutive
//! failures are still recoverable; `K + 1` are not — that is the disk
//! tier's job.
//!
//! The first push of a segment is a **full** shard; subsequent pushes are
//! **deltas**: the chunk-space runs the dirty tracker marked since the
//! previous save, which lazy Adam guarantees are the only elements that
//! changed. Every push carries CRC-32C checksums of the *full* post-save
//! state, so a holder that patches a delta onto its base verifies the
//! result end-to-end and drops the replica (counting
//! `hot/replica_rejected`) on any mismatch — a corrupt replica is never
//! served.
//!
//! Memory bound: a rank's bank holds replicas for `K + 1` source ranks
//! (itself plus its wards) × [`RETAIN_STEPS`] steps, so bank memory is at
//! most `(K + 1) × RETAIN_STEPS × shard_bytes` regardless of run length.
//!
//! On failure the supervisor marks the dead ranks' banks lost and asks
//! [`HotTier::try_recover`] for the newest step at which *every* source
//! rank still has a CRC-valid replica in a surviving bank. If one exists,
//! the shards are consolidated in memory ([`MemoryCheckpoint::assemble`] —
//! the exact convert-pass operations, so the result is bitwise-identical
//! to the disk checkpoint of the same step) and served to the restarted
//! topology; otherwise recovery falls back to the latest committed disk
//! checkpoint.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ucp_collectives::exchange::Mesh;
use ucp_core::checkpoint::CommonState;
use ucp_core::{HotShard, MemoryCheckpoint};
use ucp_storage::crc::crc32c;

use crate::dirty::DirtyMap;

/// Replica generations retained per (bank, source) slot. Two steps keep
/// the previous save recoverable while the current one is being
/// replicated, bounding bank memory instead of growing with run length.
pub const RETAIN_STEPS: usize = 2;

/// One replication message: a full shard at segment start, dirty-run
/// deltas afterwards. Both carry CRC-32C checksums of the full post-save
/// `[fp32, exp_avg, exp_avg_sq]` chunks.
#[derive(Clone)]
enum HotMsg {
    Full {
        shard: HotShard,
        crc: [u32; 3],
    },
    Delta {
        common: CommonState,
        /// `(chunk_offset, len)` runs, sorted, in this rank's chunk space.
        runs: Vec<(usize, usize)>,
        /// Run payloads, concatenated in run order, per state key.
        data: [Vec<f32>; 3],
        crc: [u32; 3],
    },
}

/// One installed replica: a source rank's shard at one step, plus the
/// checksums it was verified against.
struct Replica {
    step: u64,
    shard: HotShard,
    crc: [u32; 3],
}

/// Per-rank replica bank: source rank → replicas, newest last.
type Bank = HashMap<usize, Vec<Replica>>;

struct TierState {
    world: usize,
    mesh: Option<Arc<Mesh<HotMsg>>>,
    /// `banks[r]` models rank r's RAM. Process-level so it survives the
    /// cluster teardown a rank failure causes.
    banks: Vec<Bank>,
    /// Ranks the supervisor declared dead; their banks are unavailable.
    lost: Vec<bool>,
    /// Whether each rank has pushed its full shard this segment (first
    /// push is full, later ones are deltas).
    pushed_full: Vec<bool>,
}

/// The process-level hot-tier store. Owned by the supervisor (shared into
/// each segment's rank closures), so replicas outlive the cluster run
/// that produced them — which is exactly what makes them recoverable
/// after a rank failure unwinds every rank thread.
pub struct HotTier {
    replicas: usize,
    state: Mutex<TierState>,
}

impl HotTier {
    /// A tier replicating each rank's shard to `replicas` peers.
    pub fn new(replicas: usize) -> HotTier {
        assert!(replicas >= 1, "caller validates the replication factor");
        HotTier {
            replicas,
            state: Mutex::new(TierState {
                world: 0,
                mesh: None,
                banks: Vec::new(),
                lost: Vec::new(),
                pushed_full: Vec::new(),
            }),
        }
    }

    /// The replication factor K.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Reset for a new supervised segment of `world` ranks: fresh mesh,
    /// empty banks (the world may have changed across a ladder rung, and
    /// stale replicas from a previous topology must never be served).
    pub fn begin_segment(&self, world: usize) {
        let mut s = self.state.lock().expect("hot tier poisoned");
        s.world = world;
        s.mesh = Some(Arc::new(Mesh::new(world)));
        s.banks = (0..world).map(|_| Bank::new()).collect();
        s.lost = vec![false; world];
        s.pushed_full = vec![false; world];
    }

    /// Holder ranks `rank` replicates to: the next K ranks on the ring.
    pub fn holders_of(&self, rank: usize, world: usize) -> Vec<usize> {
        (1..=self.replicas).map(|k| (rank + k) % world).collect()
    }

    /// Source ranks whose replicas `rank` hosts (besides itself).
    pub fn wards_of(&self, rank: usize, world: usize) -> Vec<usize> {
        (1..=self.replicas)
            .map(|k| (rank + world - k) % world)
            .collect()
    }

    /// One rank's replication round at a save step: push to the K
    /// holders, self-install, and install the K wards' pushes. Returns
    /// the payload bytes this rank pushed. Failures are the caller's to
    /// count — a failed round degrades the tier, never the training run.
    pub fn replicate(
        &self,
        rank: usize,
        step: u64,
        shard: HotShard,
        dirty: &DirtyMap,
        deadline: Duration,
    ) -> Result<u64, String> {
        let (mesh, world, first) = {
            let mut s = self.state.lock().expect("hot tier poisoned");
            let mesh = Arc::clone(s.mesh.as_ref().ok_or("hot tier: no active segment")?);
            let first = !s.pushed_full[rank];
            s.pushed_full[rank] = true;
            (mesh, s.world, first)
        };
        let crc = [
            crc_f32(&shard.shard.fp32),
            crc_f32(&shard.shard.exp_avg),
            crc_f32(&shard.shard.exp_avg_sq),
        ];
        let msg = if first {
            HotMsg::Full {
                shard: shard.clone(),
                crc,
            }
        } else {
            let runs = dirty_chunk_runs(&shard, dirty);
            let data = [
                gather_runs(&shard.shard.fp32, &runs),
                gather_runs(&shard.shard.exp_avg, &runs),
                gather_runs(&shard.shard.exp_avg_sq, &runs),
            ];
            HotMsg::Delta {
                common: shard.common.clone(),
                runs,
                data,
                crc,
            }
        };
        let bytes = match &msg {
            HotMsg::Full { shard, .. } => shard.payload_bytes(),
            HotMsg::Delta { data, .. } => (data.iter().map(Vec::len).sum::<usize>() * 4) as u64,
        } * self.replicas as u64;

        // Sends never block (unbounded mesh channels): push everything
        // first, then drain the wards — deadlock-free by construction.
        let lease = mesh.lease(rank, step);
        for to in self.holders_of(rank, world) {
            lease
                .send(to, msg.clone())
                .map_err(|e| format!("hot push to rank {to}: {e:?}"))?;
        }
        // Self-install covers the holders-all-dead direction of the
        // placement guarantee: a surviving rank always serves itself.
        self.install(rank, rank, step, HotMsg::Full { shard, crc });
        for from in self.wards_of(rank, world) {
            let incoming = lease
                .recv_from(from, deadline)
                .map_err(|e| format!("hot pull from rank {from}: {e:?}"))?;
            self.install(rank, from, step, incoming);
        }
        lease.finish();
        Ok(bytes)
    }

    /// Install a received replica into `holder`'s bank, verifying the
    /// CRC end-to-end. A delta is patched onto the newest base replica of
    /// the same source; any checksum mismatch drops the replica and ticks
    /// `hot/replica_rejected` instead of installing corrupt state.
    fn install(&self, holder: usize, src: usize, step: u64, msg: HotMsg) {
        let mut s = self.state.lock().expect("hot tier poisoned");
        let replica = match msg {
            HotMsg::Full { shard, crc } => {
                let got = [
                    crc_f32(&shard.shard.fp32),
                    crc_f32(&shard.shard.exp_avg),
                    crc_f32(&shard.shard.exp_avg_sq),
                ];
                if got != crc {
                    ucp_telemetry::count("hot/replica_rejected", 1);
                    return;
                }
                Replica { step, shard, crc }
            }
            HotMsg::Delta {
                common,
                runs,
                data,
                crc,
            } => {
                let Some(base) = s.banks[holder]
                    .get(&src)
                    .and_then(|v| v.last())
                    .map(|r| r.shard.clone())
                else {
                    // No base to patch (e.g. the full push was rejected):
                    // the source's replica chain on this holder is broken
                    // until the next segment.
                    ucp_telemetry::count("hot/replica_rejected", 1);
                    return;
                };
                let mut shard = base;
                shard.common = common;
                patch_runs(&mut shard.shard.fp32, &runs, &data[0]);
                patch_runs(&mut shard.shard.exp_avg, &runs, &data[1]);
                patch_runs(&mut shard.shard.exp_avg_sq, &runs, &data[2]);
                let got = [
                    crc_f32(&shard.shard.fp32),
                    crc_f32(&shard.shard.exp_avg),
                    crc_f32(&shard.shard.exp_avg_sq),
                ];
                if got != crc {
                    ucp_telemetry::count("hot/replica_rejected", 1);
                    return;
                }
                Replica { step, shard, crc }
            }
        };
        let slot = s.banks[holder].entry(src).or_default();
        slot.retain(|r| r.step != step);
        slot.push(replica);
        slot.sort_by_key(|r| r.step);
        if slot.len() > RETAIN_STEPS {
            let drop = slot.len() - RETAIN_STEPS;
            slot.drain(..drop);
        }
    }

    /// Declare ranks dead: their banks are no longer available to serve
    /// replicas. (Their *state* lives on in surviving banks — that is the
    /// point of the tier.)
    pub fn mark_lost(&self, ranks: &[usize]) {
        let mut s = self.state.lock().expect("hot tier poisoned");
        for &r in ranks {
            if r < s.lost.len() {
                s.lost[r] = true;
            }
        }
    }

    /// Try to recover from peer memory: find the newest step at which
    /// every source rank has a CRC-valid replica in a surviving bank and
    /// consolidate those shards into an in-memory universal checkpoint.
    /// Returns the checkpoint plus the surviving ranks whose banks served
    /// shards, or `None` when the hot copy is incomplete (multi-fault
    /// beyond K, replica chain broken, or CRC rot) — the caller falls
    /// back to disk.
    pub fn try_recover(&self) -> Option<(MemoryCheckpoint, Vec<usize>)> {
        let s = self.state.lock().expect("hot tier poisoned");
        if s.world == 0 {
            return None;
        }
        // Steps available per source, restricted to surviving banks.
        let available = |src: usize, step: u64| -> Option<usize> {
            // Prefer the source's own bank, then the ring order.
            std::iter::once(src)
                .chain((1..=self.replicas).map(|k| (src + k) % s.world))
                .find(|&holder| {
                    !s.lost[holder]
                        && s.banks[holder]
                            .get(&src)
                            .is_some_and(|v| v.iter().any(|r| r.step == step))
                })
        };
        // Candidate steps, newest first: any step any surviving bank holds.
        let mut steps: Vec<u64> = s
            .banks
            .iter()
            .enumerate()
            .filter(|(h, _)| !s.lost[*h])
            .flat_map(|(_, b)| b.values().flatten().map(|r| r.step))
            .collect();
        steps.sort_unstable();
        steps.dedup();
        for &step in steps.iter().rev() {
            let holders: Option<Vec<usize>> =
                (0..s.world).map(|src| available(src, step)).collect();
            let Some(holders) = holders else { continue };
            let mut shards = Vec::with_capacity(s.world);
            let mut served: Vec<usize> = Vec::new();
            let mut valid = true;
            for (src, &holder) in holders.iter().enumerate() {
                let replica = s.banks[holder]
                    .get(&src)
                    .and_then(|v| v.iter().find(|r| r.step == step))
                    .expect("holder chosen because it has the step");
                // Guard against in-memory rot between install and serve.
                let got = [
                    crc_f32(&replica.shard.shard.fp32),
                    crc_f32(&replica.shard.shard.exp_avg),
                    crc_f32(&replica.shard.shard.exp_avg_sq),
                ];
                if got != replica.crc {
                    ucp_telemetry::count("hot/replica_rejected", 1);
                    valid = false;
                    break;
                }
                shards.push(replica.shard.clone());
                served.push(holder);
            }
            if !valid {
                continue;
            }
            match MemoryCheckpoint::assemble(shards) {
                Ok(ckpt) => {
                    served.sort_unstable();
                    served.dedup();
                    return Some((ckpt, served));
                }
                Err(e) => {
                    // An incomplete or inconsistent shard set at this step;
                    // try an older one.
                    eprintln!("hot tier: assemble at step {step} failed: {e}");
                    continue;
                }
            }
        }
        None
    }

    /// Total replica payload bytes currently held across surviving banks
    /// (telemetry/test convenience).
    pub fn resident_bytes(&self) -> u64 {
        let s = self.state.lock().expect("hot tier poisoned");
        s.banks
            .iter()
            .enumerate()
            .filter(|(h, _)| !s.lost[*h])
            .flat_map(|(_, b)| b.values().flatten())
            .map(|r| r.shard.payload_bytes())
            .sum()
    }
}

/// CRC-32C over an f32 slice's little-endian bytes.
fn crc_f32(xs: &[f32]) -> u32 {
    let mut bytes = Vec::with_capacity(xs.len() * 4);
    for x in xs {
        bytes.extend_from_slice(&x.to_le_bytes());
    }
    crc32c(&bytes)
}

/// Intersect the dirty tracker's parameter-space ranges with this rank's
/// ZeRO fragments, yielding sorted `(chunk_offset, len)` runs — the only
/// elements of the chunk lazy Adam touched since the last drain.
fn dirty_chunk_runs(shard: &HotShard, dirty: &DirtyMap) -> Vec<(usize, usize)> {
    let layout = &shard.shard.layout;
    let zi = shard.shard.dp;
    let mut runs: Vec<(usize, usize)> = Vec::new();
    for slot in &layout.slots {
        let Some(ranges) = dirty.get(&slot.name) else {
            continue;
        };
        for f in layout.fragments_of(slot) {
            if f.dp_rank != zi {
                continue;
            }
            for &(lo, len) in ranges {
                let a = lo.max(f.param_offset);
                let b = (lo + len).min(f.param_offset + f.len);
                if a < b {
                    runs.push((f.chunk_offset + (a - f.param_offset), b - a));
                }
            }
        }
    }
    runs.sort_unstable();
    // Merge adjacent runs so the payload header stays small.
    let mut merged: Vec<(usize, usize)> = Vec::with_capacity(runs.len());
    for (start, len) in runs {
        match merged.last_mut() {
            Some((s, l)) if *s + *l == start => *l += len,
            _ => merged.push((start, len)),
        }
    }
    merged
}

/// Concatenate the runs' values out of a chunk, in run order.
fn gather_runs(chunk: &[f32], runs: &[(usize, usize)]) -> Vec<f32> {
    let total: usize = runs.iter().map(|(_, l)| l).sum();
    let mut out = Vec::with_capacity(total);
    for &(start, len) in runs {
        out.extend_from_slice(&chunk[start..start + len]);
    }
    out
}

/// Write the runs' values back into a chunk, in run order.
fn patch_runs(chunk: &mut [f32], runs: &[(usize, usize)], data: &[f32]) {
    let mut off = 0;
    for &(start, len) in runs {
        chunk[start..start + len].copy_from_slice(&data[off..off + len]);
        off += len;
    }
    debug_assert_eq!(off, data.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ring placement invariants behind the recovery guarantee: K + 1
    /// distinct copies per source, holders/wards are inverse relations,
    /// and for any single dead rank every source still has a survivor.
    #[test]
    fn ring_placement_survives_any_single_failure() {
        for world in [2usize, 3, 4, 8] {
            for k in 1..world {
                let tier = HotTier::new(k);
                for r in 0..world {
                    let holders = tier.holders_of(r, world);
                    assert_eq!(holders.len(), k);
                    assert!(!holders.contains(&r), "ring wrapped onto the source");
                    let mut distinct = holders.clone();
                    distinct.sort_unstable();
                    distinct.dedup();
                    assert_eq!(distinct.len(), k, "duplicate holders");
                    for &h in &holders {
                        assert!(
                            tier.wards_of(h, world).contains(&r),
                            "holder {h} does not list {r} as a ward (world {world}, K {k})"
                        );
                    }
                }
                for dead in 0..world {
                    for src in 0..world {
                        let survives =
                            src != dead || tier.holders_of(src, world).iter().any(|&h| h != dead);
                        assert!(survives, "source {src} lost to single death {dead}");
                    }
                }
            }
        }
    }

    /// K consecutive failures stay recoverable; K + 1 wipe every copy of
    /// the first victim's shard — exactly the documented boundary.
    #[test]
    fn consecutive_failures_beyond_k_destroy_a_source() {
        let (world, k) = (6usize, 2usize);
        let tier = HotTier::new(k);
        let survives = |dead: &[usize], src: usize| -> bool {
            std::iter::once(src)
                .chain(tier.holders_of(src, world))
                .any(|h| !dead.contains(&h))
        };
        // K consecutive deaths: every source still has a live copy.
        let dead_k: Vec<usize> = (0..k).collect();
        for src in 0..world {
            assert!(survives(&dead_k, src));
        }
        // K + 1 consecutive deaths starting at src wipe src's copies.
        let dead_k1: Vec<usize> = (0..=k).collect();
        assert!(!survives(&dead_k1, 0));
    }

    #[test]
    fn gather_then_patch_roundtrips_dirty_runs() {
        let src: Vec<f32> = (0..16).map(|i| i as f32 * 1.5).collect();
        let runs = vec![(1usize, 3usize), (7, 2), (12, 4)];
        let data = gather_runs(&src, &runs);
        assert_eq!(data.len(), 9);
        let mut dst = vec![0.0f32; 16];
        patch_runs(&mut dst, &runs, &data);
        for &(start, len) in &runs {
            assert_eq!(&dst[start..start + len], &src[start..start + len]);
        }
        assert_eq!(dst[0], 0.0);
        assert_eq!(dst[11], 0.0);
    }
}
