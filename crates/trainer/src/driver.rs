//! Run drivers: complete train → checkpoint → reconfigure → resume flows.
//!
//! These wrap [`crate::RankEngine`] in [`ucp_collectives::Cluster`] runs
//! and are the entry points used by the figure harness, integration tests,
//! and examples.

use std::path::{Path, PathBuf};

use ucp_collectives::Cluster;
use ucp_core::convert::{convert_to_universal, ConvertOptions, ConvertStats};
use ucp_core::load::{LoadOptions, LoadSession};
use ucp_core::manifest::UcpManifest;

use crate::engine::{RankEngine, TrainConfig};
use crate::TrainError;

/// How a run obtains its initial state.
#[derive(Debug, Clone)]
pub enum ResumeMode {
    /// Fresh initialization from the run seed.
    Fresh,
    /// Resume a native distributed checkpoint (same strategy only).
    Native {
        /// Checkpoint base directory.
        dir: PathBuf,
        /// Step to resume from.
        step: u64,
    },
    /// Resume a universal checkpoint (any strategy).
    Universal {
        /// Checkpoint base directory.
        dir: PathBuf,
        /// Step to resume from.
        step: u64,
    },
    /// Resume from a peer-assembled in-memory universal checkpoint — the
    /// hot tier's recovery path (constructed by the supervisor, never by
    /// CLI parsing). Serves the same atoms as `Universal` for the same
    /// step, without touching disk.
    Hot {
        /// The consolidated checkpoint, shared across rank threads.
        checkpoint: std::sync::Arc<ucp_core::MemoryCheckpoint>,
    },
}

/// A complete run description.
#[derive(Debug, Clone)]
pub struct TrainPlan {
    /// Run configuration.
    pub config: TrainConfig,
    /// Iterations to run (resume runs continue from the checkpoint's
    /// iteration up to `until_iteration`).
    pub until_iteration: u64,
    /// Initial-state source.
    pub resume: ResumeMode,
    /// Save a native distributed checkpoint every N iterations (`None`
    /// disables periodic saving).
    pub checkpoint_every: Option<u64>,
    /// Checkpoint base directory (required if `checkpoint_every` is set).
    pub checkpoint_dir: Option<PathBuf>,
}

impl TrainPlan {
    /// A plain run with no checkpointing.
    pub fn simple(config: TrainConfig, iterations: u64) -> TrainPlan {
        TrainPlan {
            config,
            until_iteration: iterations,
            resume: ResumeMode::Fresh,
            checkpoint_every: None,
            checkpoint_dir: None,
        }
    }
}

/// The outcome of a run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Mean LM loss per iteration, indexed by absolute iteration number
    /// (the first entry is `(start_iteration, loss)`).
    pub losses: Vec<(u64, f64)>,
    /// Iteration the run started at (0 for fresh runs).
    pub start_iteration: u64,
    /// Wall-clock seconds spent saving checkpoints (across the run, max
    /// over ranks).
    pub save_secs: f64,
    /// Wall-clock seconds spent loading/initializing state (max over
    /// ranks).
    pub load_secs: f64,
    /// Per-iteration observability records (rank 0's view).
    pub metrics: Vec<crate::engine::IterStats>,
}

/// Execute a training plan on an in-process cluster. Returns the per-rank
/// agreed result (losses are identical on every rank; rank 0's copy is
/// returned).
pub fn train_run(plan: &TrainPlan) -> Result<RunResult, TrainError> {
    plan.config.validate().map_err(TrainError::Config)?;
    let world = plan.config.parallel.world_size();
    // One load session for the whole fan-out: ranks needing the same atom
    // ranges (all DP replicas of a (tp, pp) slice) share the cached bytes
    // instead of each re-reading them.
    let session = open_resume_session(&plan.resume)?;
    // Fleet metric mesh: per-rank recorders gathered to rank 0 at run end
    // (only when telemetry is on — the mesh itself is cheap, but skipping
    // it keeps the disabled path allocation-free).
    let fleet = ucp_telemetry::enabled().then(|| crate::fleet::FleetMesh::new(world));
    let results = Cluster::run(world, |comm| -> Result<RunResult, String> {
        let t_load = std::time::Instant::now();
        let rank = comm.rank();
        let mut engine = match &plan.resume {
            ResumeMode::Fresh => RankEngine::fresh(plan.config.clone(), comm),
            ResumeMode::Native { dir, step } => {
                RankEngine::resume_native(plan.config.clone(), comm, dir, *step)
            }
            ResumeMode::Universal { .. } => RankEngine::resume_universal_session(
                plan.config.clone(),
                comm,
                session.as_ref().expect("session opened for Universal"),
            ),
            ResumeMode::Hot { checkpoint } => RankEngine::resume_universal_source(
                plan.config.clone(),
                comm,
                &crate::engine::UniversalSource::Memory(checkpoint.as_ref()),
            ),
        }
        .map_err(|e| e.to_string())?;
        let load_secs = t_load.elapsed().as_secs_f64();

        let start_iteration = engine.iteration;
        let local = fleet.as_ref().map(|_| ucp_telemetry::Recorder::new());
        let mut losses = Vec::new();
        let mut metrics = Vec::new();
        let mut save_secs = 0.0f64;
        while engine.iteration < plan.until_iteration {
            let it = engine.iteration;
            let t_it = local.as_ref().map(|_| std::time::Instant::now());
            let loss = engine.train_iteration().map_err(|e| e.to_string())?;
            if let (Some(loc), Some(t)) = (&local, t_it) {
                loc.count("rank/iterations", 1);
                loc.observe("rank/step_us", t.elapsed().as_micros() as u64);
            }
            losses.push((it + 1, loss));
            metrics.extend(engine.last_stats);
            if let (Some(every), Some(dir)) = (plan.checkpoint_every, &plan.checkpoint_dir) {
                if engine.iteration % every == 0 {
                    let t0 = std::time::Instant::now();
                    let step = engine.iteration;
                    if rank == 0 {
                        journal(dir, &ucp_storage::JournalEvent::SaveStarted { step })?;
                    }
                    engine.save_checkpoint(dir).map_err(|e| e.to_string())?;
                    // The save barriers internally: when rank 0 returns,
                    // every rank's files and the `latest` marker are
                    // published.
                    if rank == 0 {
                        journal(dir, &ucp_storage::JournalEvent::NativePersisted { step })?;
                    }
                    save_secs += t0.elapsed().as_secs_f64();
                    if let Some(loc) = &local {
                        loc.observe("rank/save_block_us", t0.elapsed().as_micros() as u64);
                    }
                }
            }
        }
        if let (Some(mesh), Some(loc)) = (fleet.as_ref(), local.as_ref()) {
            crate::fleet::gather(mesh, rank, loc);
        }
        Ok(RunResult {
            losses,
            start_iteration,
            save_secs,
            load_secs,
            metrics,
        })
    });

    collect_results(results)
}

/// Append a run-journal event under `dir`, mapping the error into the
/// cluster closure's `String` error space.
fn journal(dir: &Path, event: &ucp_storage::JournalEvent) -> Result<(), String> {
    ucp_storage::journal::append(dir, event).map_err(|e| e.to_string())
}

/// Options for the overlapped training driver.
#[derive(Debug, Clone)]
pub struct OverlappedOptions {
    /// Run the born-universal save pipeline: background writers assemble
    /// universal atom checkpoints while persisting, and rank 0's writer
    /// publishes `latest_universal` as soon as its manifest is durable and
    /// the step's native `latest` has been committed — resume needs no
    /// convert pass and training never blocks on atom assembly. Off, the
    /// driver matches the pre-pipeline behavior (native files and
    /// `latest` only).
    pub universal_save: bool,
}

impl Default for OverlappedOptions {
    fn default() -> OverlappedOptions {
        OverlappedOptions {
            universal_save: true,
        }
    }
}

/// Like [`train_run`], but checkpoint persistence overlaps training
/// (CheckFreq/Gemini-style): at each checkpoint boundary the rank takes an
/// in-memory snapshot — the only blocking cost — and a background thread
/// writes the files while training continues. The writers also run the
/// born-universal save pipeline ([`crate::pipeline`]), so each step's
/// universal atom checkpoints are assembled during the overlapped persist.
/// The `latest` and `latest_universal` markers for a step are published as
/// soon as that step's writers have drained (at the next checkpoint
/// boundary, or at run end), so a crash mid-run resumes from the newest
/// completed save — under *any* target strategy, with no convert pass.
/// The native on-disk checkpoints are byte-identical to the synchronous
/// path.
pub fn train_run_overlapped(plan: &TrainPlan) -> Result<RunResult, TrainError> {
    train_run_overlapped_with(plan, &OverlappedOptions::default())
}

/// [`train_run_overlapped`] with explicit [`OverlappedOptions`].
pub fn train_run_overlapped_with(
    plan: &TrainPlan,
    opts: &OverlappedOptions,
) -> Result<RunResult, TrainError> {
    plan.config.validate().map_err(TrainError::Config)?;
    let world = plan.config.parallel.world_size();
    let session = open_resume_session(&plan.resume)?;
    // One persistent exchange mesh for the whole run, wired before the
    // fan-out so every rank's background writer leases the same fabric.
    // Each save step claims an epoch-tagged lease instead of paying for a
    // fresh O(world²) mesh — the fixed cost that dominates at
    // per-iteration cadence.
    let pipelines = opts
        .universal_save
        .then(|| crate::pipeline::SavePipelines::new(world));
    let fleet = ucp_telemetry::enabled().then(|| crate::fleet::FleetMesh::new(world));
    let results = Cluster::run(world, |comm| -> Result<RunResult, String> {
        let t_load = std::time::Instant::now();
        let rank = comm.rank();
        let mut engine = match &plan.resume {
            ResumeMode::Fresh => RankEngine::fresh(plan.config.clone(), comm),
            ResumeMode::Native { dir, step } => {
                RankEngine::resume_native(plan.config.clone(), comm, dir, *step)
            }
            ResumeMode::Universal { .. } => RankEngine::resume_universal_session(
                plan.config.clone(),
                comm,
                session.as_ref().expect("session opened for Universal"),
            ),
            ResumeMode::Hot { checkpoint } => RankEngine::resume_universal_source(
                plan.config.clone(),
                comm,
                &crate::engine::UniversalSource::Memory(checkpoint.as_ref()),
            ),
        }
        .map_err(|e| e.to_string())?;
        let load_secs = t_load.elapsed().as_secs_f64();

        // Drain the previous background writer only as far as its native
        // persist and commit the native `latest` marker. The writer keeps
        // assembling universal atoms in the background and publishes
        // `latest_universal` itself once rank 0's training thread reports
        // the native marker durable — atom assembly never blocks
        // training. The writer handle is returned so the run can join it
        // (and surface its errors) at the end.
        let drain = |engine: &RankEngine,
                     prev: crate::snapshot::PendingSave,
                     dir: &Path|
         -> Result<crate::snapshot::PendingSave, String> {
            let step = prev.step;
            let t_drain = ucp_telemetry::enabled().then(std::time::Instant::now);
            {
                let _drain =
                    ucp_telemetry::trace::span(ucp_telemetry::TraceCat::Checkpoint, "drain");
                prev.wait_persisted().map_err(|e| e.to_string())?;
            }
            if let Some(t) = t_drain {
                ucp_telemetry::global().record_span("save/drain", t.elapsed());
            }
            // The drained step's native files are complete on every rank:
            // publish `latest` now, so a crash later in the run loses one
            // interval, not the whole run.
            engine
                .publish_markers(dir, step, false)
                .map_err(|e| e.to_string())?;
            // Native marker durable (the publish barrier guarantees it on
            // every rank): clear the step's writer to publish the
            // universal marker whenever its manifest lands.
            if rank == 0 {
                journal(dir, &ucp_storage::JournalEvent::NativePersisted { step })?;
                if let Some(p) = pipelines.as_ref() {
                    p.notify_native_published(step);
                }
            }
            Ok(prev)
        };

        let start_iteration = engine.iteration;
        let local = fleet.as_ref().map(|_| ucp_telemetry::Recorder::new());
        let mut losses = Vec::new();
        let mut metrics = Vec::new();
        let mut save_secs = 0.0f64;
        let mut pending: Option<crate::snapshot::PendingSave> = None;
        // Drained writers still assembling universal atoms; joined (and
        // their errors surfaced) at run end. Bounded so a pipeline that
        // can't keep up with the save cadence applies backpressure
        // instead of accumulating snapshots.
        let mut tail: Vec<crate::snapshot::PendingSave> = Vec::new();
        // Snapshots come from a bounded pool of reusable buffers sized to
        // the writers the tail bound allows in flight: capturing one is a
        // memcpy into recycled capacity, and a lagging pipeline blocks the
        // next capture instead of growing memory without bound.
        let snapshot_pool =
            crate::snapshot::SnapshotPool::new(crate::pipeline::SNAPSHOT_POOL_CAPACITY);
        while engine.iteration < plan.until_iteration {
            let it = engine.iteration;
            let t_it = local.as_ref().map(|_| std::time::Instant::now());
            let loss = engine.train_iteration().map_err(|e| e.to_string())?;
            if let (Some(loc), Some(t)) = (&local, t_it) {
                loc.count("rank/iterations", 1);
                loc.observe("rank/step_us", t.elapsed().as_micros() as u64);
            }
            losses.push((it + 1, loss));
            metrics.extend(engine.last_stats);
            if let (Some(every), Some(dir)) = (plan.checkpoint_every, &plan.checkpoint_dir) {
                if engine.iteration % every == 0 {
                    let t0 = std::time::Instant::now();
                    if rank == 0 {
                        journal(
                            dir,
                            &ucp_storage::JournalEvent::SaveStarted {
                                step: engine.iteration,
                            },
                        )?;
                    }
                    // Only the drain of the previous writer's persist and
                    // the snapshot block training.
                    if let Some(prev) = pending.take() {
                        tail.push(drain(&engine, prev, dir)?);
                    }
                    while tail.len() > 2 {
                        tail.remove(0).wait().map_err(|e| e.to_string())?;
                    }
                    let t_snap = ucp_telemetry::enabled().then(std::time::Instant::now);
                    let snapshot = engine.snapshot_pooled(&snapshot_pool);
                    if let Some(t) = t_snap {
                        ucp_telemetry::global().record_span("save/snapshot", t.elapsed());
                    }
                    save_secs += t0.elapsed().as_secs_f64();
                    if let Some(loc) = &local {
                        loc.observe("rank/save_block_us", t0.elapsed().as_micros() as u64);
                    }
                    let task = pipelines
                        .as_ref()
                        .and_then(|p| p.take(engine.iteration, rank));
                    pending = Some(crate::snapshot::PendingSave::spawn_with(
                        snapshot,
                        dir.clone(),
                        task,
                    ));
                }
            }
        }
        if let Some(prev) = pending.take() {
            if let Some(dir) = &plan.checkpoint_dir {
                tail.push(drain(&engine, prev, dir)?);
            } else {
                prev.wait().map_err(|e| e.to_string())?;
            }
        }
        // Join every outstanding writer. This is shutdown latency, not a
        // training stall (there is no more training to overlap with), so
        // it lands on its own span.
        let t_final = ucp_telemetry::enabled().then(std::time::Instant::now);
        {
            let _sp =
                ucp_telemetry::trace::span(ucp_telemetry::TraceCat::Checkpoint, "final_drain");
            for prev in tail {
                prev.wait().map_err(|e| e.to_string())?;
            }
        }
        if let Some(t) = t_final {
            ucp_telemetry::global().record_span("save/final_drain", t.elapsed());
        }
        if let (Some(mesh), Some(loc)) = (fleet.as_ref(), local.as_ref()) {
            crate::fleet::gather(mesh, rank, loc);
        }
        Ok(RunResult {
            losses,
            start_iteration,
            save_secs,
            load_secs,
            metrics,
        })
    });

    collect_results(results)
}

/// Open the shared [`LoadSession`] a universal resume needs (`None` for
/// the other modes). Opening it before the cluster fan-out is what lets
/// every rank load through one atom cache.
pub(crate) fn open_resume_session(resume: &ResumeMode) -> Result<Option<LoadSession>, TrainError> {
    match resume {
        ResumeMode::Universal { dir, step } => Ok(Some(
            LoadSession::open(dir, *step, LoadOptions::default()).map_err(TrainError::Ucp)?,
        )),
        _ => Ok(None),
    }
}

/// Merge per-rank results, surfacing the most informative error.
pub(crate) fn collect_results(
    results: Vec<std::result::Result<RunResult, String>>,
) -> Result<RunResult, TrainError> {
    let mut out: Option<RunResult> = None;
    let mut errors: Vec<(usize, String)> = Vec::new();
    for (rank, r) in results.into_iter().enumerate() {
        match r {
            Ok(res) => {
                if let Some(first) = &mut out {
                    first.save_secs = first.save_secs.max(res.save_secs);
                    first.load_secs = first.load_secs.max(res.load_secs);
                } else {
                    out = Some(res);
                }
            }
            Err(msg) => errors.push((rank, msg)),
        }
    }
    if !errors.is_empty() {
        // When one rank fails, its peers observe secondary peer-failure
        // errors (disconnects, dead marks, watchdog timeouts); surface the
        // root cause, not the symptom.
        let secondary =
            |m: &str| m.contains("disconnected") || m.contains("is dead") || m.contains("watchdog");
        let (rank, msg) = errors
            .iter()
            .find(|(_, m)| !secondary(m))
            .unwrap_or(&errors[0]);
        return Err(TrainError::Config(format!("rank {rank}: {msg}")));
    }
    Ok(out.expect("world_size >= 1"))
}

/// Convert a native checkpoint under `dir` at `step` into a universal
/// checkpoint (the lazy, on-demand conversion of §3.1).
pub fn convert_checkpoint(
    dir: &Path,
    step: u64,
    opts: &ConvertOptions,
) -> Result<(UcpManifest, ConvertStats), TrainError> {
    convert_to_universal(dir, step, opts).map_err(TrainError::Ucp)
}

/// Train under `source`, checkpoint at `ckpt_step`, convert to UCP, and
/// resume under `target` up to `until`: the paper's single-source →
/// single-target experiment unit. Returns `(source run, target run)`.
#[allow(clippy::too_many_arguments)]
pub fn resume_run(
    source: TrainConfig,
    target: TrainConfig,
    dir: &Path,
    ckpt_step: u64,
    until: u64,
) -> Result<(RunResult, RunResult), TrainError> {
    let src_plan = TrainPlan {
        config: source,
        until_iteration: ckpt_step,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(ckpt_step),
        checkpoint_dir: Some(dir.to_path_buf()),
    };
    let src_result = train_run(&src_plan)?;
    convert_checkpoint(dir, ckpt_step, &ConvertOptions::default())?;
    let tgt_plan = TrainPlan {
        config: target,
        until_iteration: until,
        resume: ResumeMode::Universal {
            dir: dir.to_path_buf(),
            step: ckpt_step,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    };
    let tgt_result = train_run(&tgt_plan)?;
    Ok((src_result, tgt_result))
}

/// One phase of an elastic schedule: a parallelism strategy held until a
/// target iteration.
#[derive(Debug, Clone)]
pub struct ElasticPhase {
    /// Strategy for this phase (rank count may differ per phase).
    pub parallel: ucp_parallel::ParallelConfig,
    /// Train until this absolute iteration, then checkpoint and hand over.
    pub until_iteration: u64,
}

/// Run an elastic schedule: train each phase under its strategy,
/// checkpointing at the phase boundary and converting to a universal
/// checkpoint so the next phase can resume under a different strategy —
/// the paper's failure-resilience / elastic-capacity scenario as a single
/// driver call. Returns the per-phase results.
pub fn run_elastic(
    base: TrainConfig,
    phases: &[ElasticPhase],
    dir: &Path,
) -> Result<Vec<RunResult>, TrainError> {
    if phases.is_empty() {
        return Ok(Vec::new());
    }
    let mut results = Vec::with_capacity(phases.len());
    let mut prev_boundary: Option<u64> = None;
    for phase in phases {
        let mut config = base.clone();
        config.parallel = phase.parallel;
        let resume = match prev_boundary {
            None => ResumeMode::Fresh,
            Some(step) => {
                convert_checkpoint(dir, step, &ConvertOptions::default())?;
                ResumeMode::Universal {
                    dir: dir.to_path_buf(),
                    step,
                }
            }
        };
        let result = train_run(&TrainPlan {
            config,
            until_iteration: phase.until_iteration,
            resume,
            checkpoint_every: Some(phase.until_iteration),
            checkpoint_dir: Some(dir.to_path_buf()),
        })?;
        prev_boundary = Some(phase.until_iteration);
        results.push(result);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucp_model::ModelConfig;
    use ucp_parallel::{ParallelConfig, ZeroStage};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ucp_driver_test_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fresh_single_rank_loss_decreases() {
        let cfg = TrainConfig::quick(ModelConfig::gpt3_tiny(), ParallelConfig::single(), 42);
        let result = train_run(&TrainPlan::simple(cfg, 10)).unwrap();
        assert_eq!(result.losses.len(), 10);
        let first = result.losses[0].1;
        let last = result.losses.last().unwrap().1;
        assert!(
            last < first,
            "loss should decrease over 10 iterations: {first} → {last}"
        );
    }

    #[test]
    fn dp2_matches_single_rank_losses() {
        let single = TrainConfig::quick(ModelConfig::gpt3_tiny(), ParallelConfig::single(), 7);
        let dp2 = TrainConfig::quick(
            ModelConfig::gpt3_tiny(),
            ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
            7,
        );
        let a = train_run(&TrainPlan::simple(single, 5)).unwrap();
        let b = train_run(&TrainPlan::simple(dp2, 5)).unwrap();
        for ((ia, la), (ib, lb)) in a.losses.iter().zip(&b.losses) {
            assert_eq!(ia, ib);
            assert!(
                (la - lb).abs() < 5e-3,
                "iteration {ia}: DP1 {la} vs DP2 {lb}"
            );
        }
    }

    #[test]
    fn native_resume_same_strategy_continues_exactly() {
        let dir = tmp("native_resume");
        let cfg = TrainConfig::quick(ModelConfig::gpt3_tiny(), ParallelConfig::single(), 3);
        // Uninterrupted baseline.
        let full = train_run(&TrainPlan::simple(cfg.clone(), 8)).unwrap();
        // Interrupted at 4, resumed natively.
        let part1 = train_run(&TrainPlan {
            config: cfg.clone(),
            until_iteration: 4,
            resume: ResumeMode::Fresh,
            checkpoint_every: Some(4),
            checkpoint_dir: Some(dir.clone()),
        })
        .unwrap();
        let part2 = train_run(&TrainPlan {
            config: cfg,
            until_iteration: 8,
            resume: ResumeMode::Native {
                dir: dir.clone(),
                step: 4,
            },
            checkpoint_every: None,
            checkpoint_dir: None,
        })
        .unwrap();
        assert_eq!(part2.start_iteration, 4);
        let stitched: Vec<(u64, f64)> = part1.losses.iter().chain(&part2.losses).cloned().collect();
        for ((ia, la), (ib, lb)) in full.losses.iter().zip(&stitched) {
            assert_eq!(ia, ib);
            assert!(
                (la - lb).abs() < 1e-9,
                "iteration {ia}: uninterrupted {la} vs resumed {lb}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn native_resume_rejects_strategy_change() {
        let dir = tmp("native_reject");
        let src = TrainConfig::quick(ModelConfig::gpt3_tiny(), ParallelConfig::single(), 5);
        train_run(&TrainPlan {
            config: src,
            until_iteration: 2,
            resume: ResumeMode::Fresh,
            checkpoint_every: Some(2),
            checkpoint_dir: Some(dir.clone()),
        })
        .unwrap();
        let target = TrainConfig::quick(
            ModelConfig::gpt3_tiny(),
            ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
            5,
        );
        let err = train_run(&TrainPlan {
            config: target,
            until_iteration: 4,
            resume: ResumeMode::Native {
                dir: dir.clone(),
                step: 2,
            },
            checkpoint_every: None,
            checkpoint_dir: None,
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("convert it to a universal checkpoint"),
            "{msg}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn universal_resume_across_strategies_continues_loss_curve() {
        let dir = tmp("universal_resume");
        let src = TrainConfig::quick(
            ModelConfig::gpt3_tiny(),
            ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1),
            11,
        );
        let tgt = TrainConfig::quick(
            ModelConfig::gpt3_tiny(),
            ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
            11,
        );
        // Uninterrupted source baseline for comparison.
        let baseline = train_run(&TrainPlan::simple(src.clone(), 8)).unwrap();
        let (src_run, tgt_run) = resume_run(src, tgt, &dir, 4, 8).unwrap();
        assert_eq!(src_run.losses.len(), 4);
        assert_eq!(tgt_run.start_iteration, 4);
        // The resumed curve must continue the baseline.
        for ((ia, la), (ib, lb)) in baseline.losses[4..].iter().zip(&tgt_run.losses) {
            assert_eq!(ia, ib);
            assert!(
                (la - lb).abs() < 5e-3,
                "iteration {ia}: baseline {la} vs UCP-resumed {lb}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn elastic_schedule_crosses_three_strategies() {
        let dir = tmp("elastic");
        let base = TrainConfig::quick(ModelConfig::gpt3_tiny(), ParallelConfig::single(), 13);
        let phases = [
            ElasticPhase {
                parallel: ParallelConfig::new(1, 1, 4, 1, ZeroStage::Zero1),
                until_iteration: 3,
            },
            ElasticPhase {
                parallel: ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero2),
                until_iteration: 6,
            },
            ElasticPhase {
                parallel: ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1),
                until_iteration: 9,
            },
        ];
        let results = run_elastic(base.clone(), &phases, &dir).unwrap();
        assert_eq!(results.len(), 3);
        // The stitched curve equals one uninterrupted run.
        let mut baseline_cfg = base;
        baseline_cfg.parallel = ParallelConfig::new(1, 1, 4, 1, ZeroStage::Zero1);
        let baseline = train_run(&TrainPlan::simple(baseline_cfg, 9)).unwrap();
        let stitched: Vec<(u64, f64)> = results.iter().flat_map(|r| r.losses.clone()).collect();
        assert_eq!(stitched.len(), baseline.losses.len());
        for ((ia, la), (ib, lb)) in baseline.losses.iter().zip(&stitched) {
            assert_eq!(ia, ib);
            assert!(
                (la - lb).abs() < 2e-3,
                "elastic run diverges at iteration {ia}: {la} vs {lb}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_record_every_iteration() {
        let cfg = TrainConfig::quick(ModelConfig::gpt3_tiny(), ParallelConfig::single(), 99);
        let clip = cfg.grad_clip;
        let run = train_run(&TrainPlan::simple(cfg, 4)).unwrap();
        assert_eq!(run.metrics.len(), 4);
        for (m, (it, loss)) in run.metrics.iter().zip(&run.losses) {
            assert_eq!(m.iteration, *it);
            assert_eq!(m.loss, *loss);
            assert!(m.grad_norm.is_finite() && m.grad_norm > 0.0);
            assert!(m.lr > 0.0);
            assert!(m.tokens_per_sec > 0.0);
            let _ = clip;
        }
    }

    #[test]
    fn one_f_one_b_matches_sequential() {
        use crate::engine::PipelineSchedule;
        // Same run under both schedules: losses must agree to f64-reorder
        // precision, across deep-pipeline and PP×DP layouts.
        for (parallel, seed) in [
            (ParallelConfig::new(1, 4, 1, 1, ZeroStage::Zero1), 101u64),
            (ParallelConfig::new(1, 2, 2, 1, ZeroStage::Zero1), 102),
            (ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1), 103),
        ] {
            let mut sequential = TrainConfig::quick(ModelConfig::gpt3_tiny(), parallel, seed);
            sequential.global_batch = 8;
            sequential.micro_batch = 1; // 8 microbatches: real overlap depth
            let mut one_f_one_b = sequential.clone();
            one_f_one_b.schedule = PipelineSchedule::OneFOneB;
            let a = train_run(&TrainPlan::simple(sequential, 3)).unwrap();
            let b = train_run(&TrainPlan::simple(one_f_one_b, 3)).unwrap();
            for ((ia, la), (ib, lb)) in a.losses.iter().zip(&b.losses) {
                assert_eq!(ia, ib);
                assert!(
                    (la - lb).abs() < 1e-9,
                    "{} iteration {ia}: sequential {la} vs 1F1B {lb}",
                    parallel.label()
                );
            }
        }
    }

    #[test]
    fn one_f_one_b_checkpoints_resume_under_sequential() {
        use crate::engine::PipelineSchedule;
        let dir = tmp("schedule_resume");
        let mut cfg = TrainConfig::quick(
            ModelConfig::gpt3_tiny(),
            ParallelConfig::new(1, 2, 1, 1, ZeroStage::Zero1),
            104,
        );
        cfg.schedule = PipelineSchedule::OneFOneB;
        train_run(&TrainPlan {
            config: cfg.clone(),
            until_iteration: 2,
            resume: ResumeMode::Fresh,
            checkpoint_every: Some(2),
            checkpoint_dir: Some(dir.clone()),
        })
        .unwrap();
        convert_checkpoint(&dir, 2, &ucp_core::convert::ConvertOptions::default()).unwrap();
        let mut tgt = TrainConfig::quick(
            ModelConfig::gpt3_tiny(),
            ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1),
            104,
        );
        tgt.schedule = PipelineSchedule::Sequential;
        let run = train_run(&TrainPlan {
            config: tgt,
            until_iteration: 4,
            resume: ResumeMode::Universal {
                dir: dir.clone(),
                step: 2,
            },
            checkpoint_every: None,
            checkpoint_dir: None,
        })
        .unwrap();
        assert!(run.losses.iter().all(|(_, l)| l.is_finite()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
