//! Dirty-fragment tracking for per-iteration checkpoint cadence.
//!
//! Lazy AdamW ([`ucp_optim::AdamState::step`]) leaves zero-gradient
//! elements bitwise untouched — no moment decay, no weight decay. The
//! tracker exploits that: every iteration it scans the all-reduced flat
//! gradient and marks the *blocks* containing any non-zero element dirty.
//! At snapshot time the accumulated dirty set rides along with the
//! snapshot; the save pipeline then sends only dirty sub-fragments over
//! the exchange, and atoms that received no fragments anywhere are
//! republished as hard links to the prior universal step's files.
//!
//! Soundness: the full flat gradient is identical on every ZeRO rank of a
//! (tp, pp) slice (the trainer all-reduces the *whole* flat buffer before
//! chunking), so all contributors of a slice agree on what is dirty, and
//! a block the tracker calls clean had exactly-zero gradient on every
//! iteration since the last snapshot — lazy Adam therefore left master
//! and both moments bitwise unchanged. Dirtiness is computed *before* the
//! f64→f32 gradient cast, so an element whose f64 gradient underflows the
//! cast is conservatively dirty (a lost skip, never a lost write).
//!
//! Granularity: one block per MoE expert for `.moe.experts.` parameters
//! (their flat slot is `[E, rows, cols]`, contiguous per expert — the
//! top-k router leaves unrouted experts' gradients exactly zero), one
//! block per parameter otherwise.

use std::collections::HashMap;

use ucp_model::ModelConfig;
use ucp_parallel::FlatLayout;

/// Dirty ranges per parameter, in the parameter's shard-flat coordinates
/// (the same space as [`ucp_core::ops::Fragment::param_offset`]). Sorted,
/// non-overlapping, non-empty. A parameter absent from the map is clean.
pub type DirtyMap = HashMap<String, Vec<(usize, usize)>>;

struct SlotDirt {
    name: String,
    /// Slot start in the rank's flat buffer.
    start: usize,
    /// Real (unpadded) element count.
    len: usize,
    /// Block granularity in elements.
    block: usize,
    flags: Vec<bool>,
}

/// Accumulates per-block dirtiness between checkpoint boundaries.
pub struct DirtyTracker {
    slots: Vec<SlotDirt>,
}

impl DirtyTracker {
    /// Build the tracker for one rank's flat layout. All blocks start
    /// dirty so the first save after construction (or restart) sends the
    /// complete state.
    pub fn new(layout: &FlatLayout, model: &ModelConfig) -> DirtyTracker {
        let experts = model.num_experts.max(1);
        let slots = layout
            .slots
            .iter()
            .map(|s| {
                let block = if experts > 1
                    && s.name.contains(".moe.experts.")
                    && s.len % experts == 0
                    && s.len > 0
                {
                    s.len / experts
                } else {
                    s.len.max(1)
                };
                let blocks = s.len.div_ceil(block).max(1);
                SlotDirt {
                    name: s.name.clone(),
                    start: s.offset,
                    len: s.len,
                    block,
                    flags: vec![true; blocks],
                }
            })
            .collect();
        DirtyTracker { slots }
    }

    /// Scan one iteration's all-reduced flat gradient (the full buffer,
    /// `layout.total_len` long) and mark blocks containing any non-zero
    /// element. Call once per optimizer step, before the state is mutated.
    pub fn observe_grads(&mut self, flat: &[f64]) {
        for slot in &mut self.slots {
            let data = &flat[slot.start..slot.start + slot.len];
            for (bi, flag) in slot.flags.iter_mut().enumerate() {
                if *flag {
                    continue;
                }
                let lo = bi * slot.block;
                let hi = (lo + slot.block).min(slot.len);
                if data[lo..hi].iter().any(|&g| g != 0.0) {
                    *flag = true;
                }
            }
        }
    }

    /// Fraction of blocks currently dirty (telemetry/bench convenience).
    pub fn dirty_fraction(&self) -> f64 {
        let total: usize = self.slots.iter().map(|s| s.flags.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let dirty: usize = self
            .slots
            .iter()
            .map(|s| s.flags.iter().filter(|&&f| f).count())
            .sum();
        dirty as f64 / total as f64
    }

    /// Collect the accumulated dirty set as per-parameter ranges and reset
    /// every flag to clean — the caller owns shipping the returned map
    /// with the snapshot it was taken for.
    pub fn take(&mut self) -> DirtyMap {
        let mut map = DirtyMap::new();
        for slot in &mut self.slots {
            let mut ranges: Vec<(usize, usize)> = Vec::new();
            for (bi, flag) in slot.flags.iter_mut().enumerate() {
                if !*flag {
                    continue;
                }
                *flag = false;
                let lo = bi * slot.block;
                let hi = (lo + slot.block).min(slot.len);
                match ranges.last_mut() {
                    // Merge adjacent dirty blocks into one range.
                    Some((start, len)) if *start + *len == lo => *len += hi - lo,
                    _ => ranges.push((lo, hi - lo)),
                }
            }
            if !ranges.is_empty() {
                map.insert(slot.name.clone(), ranges);
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucp_tensor::Shape;

    fn layout() -> FlatLayout {
        FlatLayout::build(
            &[
                ("a.weight".to_string(), Shape::new([4])),
                ("layers.0.moe.experts.w_in".to_string(), Shape::new([2, 3])),
            ],
            1,
            1,
        )
    }

    fn moe_cfg() -> ModelConfig {
        let mut m = ModelConfig::gpt3_tiny();
        m.num_experts = 2;
        m
    }

    #[test]
    fn first_take_is_fully_dirty_then_clean() {
        let l = layout();
        let mut t = DirtyTracker::new(&l, &moe_cfg());
        let map = t.take();
        assert_eq!(map["a.weight"], vec![(0, 4)]);
        // Adjacent dirty expert blocks merge into one range.
        assert_eq!(map["layers.0.moe.experts.w_in"], vec![(0, 6)]);
        assert!(t.take().is_empty(), "take resets to clean");
    }

    #[test]
    fn per_expert_blocks_track_independently() {
        let l = layout();
        let mut t = DirtyTracker::new(&l, &moe_cfg());
        t.take();
        // Gradient hits only expert 1 of the MoE slot (flat offsets 4..10
        // are the expert param; expert 1 is its second half).
        let mut flat = vec![0.0f64; l.total_len];
        flat[l.slot("layers.0.moe.experts.w_in").unwrap().offset + 4] = 0.5;
        t.observe_grads(&flat);
        let map = t.take();
        assert!(!map.contains_key("a.weight"));
        assert_eq!(map["layers.0.moe.experts.w_in"], vec![(3, 3)]);
    }

    #[test]
    fn dense_param_dirties_whole_slot() {
        let l = layout();
        let mut t = DirtyTracker::new(&l, &moe_cfg());
        t.take();
        let mut flat = vec![0.0f64; l.total_len];
        flat[2] = -1.0;
        t.observe_grads(&flat);
        let map = t.take();
        assert_eq!(map["a.weight"], vec![(0, 4)]);
    }

    #[test]
    fn dirtiness_accumulates_across_iterations_until_taken() {
        let l = layout();
        let mut t = DirtyTracker::new(&l, &moe_cfg());
        t.take();
        let mut flat = vec![0.0f64; l.total_len];
        flat[0] = 1.0;
        t.observe_grads(&flat);
        // A later all-zero iteration must not wash out earlier dirtiness.
        t.observe_grads(&vec![0.0f64; l.total_len]);
        assert!(t.take().contains_key("a.weight"));
    }
}
