//! Cluster construction: spawn one thread per rank and wire the fabric.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;

use crate::comm::{ClusterState, Comm, Payload};

/// Fallback watchdog deadline when neither [`ClusterOptions`] nor the
/// `UCP_COMM_DEADLINE_MS` environment variable says otherwise. Generous on
/// purpose: a healthy collective on the in-process fabric completes in
/// microseconds, so this only ever fires on a genuinely hung rank.
pub const DEFAULT_COMM_DEADLINE: Duration = Duration::from_secs(30);

/// Tuning knobs for [`Cluster::try_run_with`].
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// How long a blocking receive may wait on one peer before the
    /// watchdog declares it hung ([`crate::CommError::Timeout`]).
    pub deadline: Duration,
}

impl Default for ClusterOptions {
    /// Deadline from `UCP_COMM_DEADLINE_MS` when set (parsed once per
    /// process), else [`DEFAULT_COMM_DEADLINE`].
    fn default() -> ClusterOptions {
        static ENV_MS: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
        let ms = ENV_MS.get_or_init(|| {
            std::env::var("UCP_COMM_DEADLINE_MS")
                .ok()
                .and_then(|v| v.trim().parse().ok())
        });
        ClusterOptions {
            deadline: ms.map_or(DEFAULT_COMM_DEADLINE, Duration::from_millis),
        }
    }
}

/// A structured account of the rank whose failure took a cluster down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankFailure {
    /// The first rank marked dead — the root cause, not a casualty of the
    /// poison cascade.
    pub rank: usize,
    /// That rank's last step reported via [`Comm::set_step`] (0 if never
    /// set).
    pub step: u64,
    /// The panic payload, stringified (`"<non-string panic payload>"` for
    /// exotic payload types).
    pub payload: String,
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} failed at step {}: {}",
            self.rank, self.step, self.payload
        )
    }
}

impl std::error::Error for RankFailure {}

fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// An in-process cluster of SPMD ranks.
///
/// [`Cluster::run`] stands in for `mpirun`/`torchrun`: it spawns
/// `world_size` threads, each executing `body` with its own [`Comm`], and
/// collects the per-rank return values in rank order. [`Cluster::try_run`]
/// is the supervised form: a rank panic comes back as a structured
/// [`RankFailure`] instead of tearing the caller down.
pub struct Cluster;

impl Cluster {
    /// Run `body` on `world_size` ranks and return their results in rank
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if any rank's thread panics. The original panic payload and
    /// the failing rank are preserved in the propagated message, mirroring
    /// a fatal NCCL abort taking down the job.
    pub fn run<T, F>(world_size: usize, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Send + Sync,
    {
        match Self::try_run(world_size, body) {
            Ok(results) => results,
            Err(failure) => panic!("{failure}"),
        }
    }

    /// [`Cluster::try_run_with`] under default [`ClusterOptions`].
    pub fn try_run<T, F>(world_size: usize, body: F) -> Result<Vec<T>, RankFailure>
    where
        T: Send,
        F: Fn(&Comm) -> T + Send + Sync,
    {
        Self::try_run_with(world_size, &ClusterOptions::default(), body)
    }

    /// Run `body` on `world_size` ranks; if any rank panics, return a
    /// [`RankFailure`] naming the first failed rank, its last reported
    /// step, and the original panic payload.
    ///
    /// A panicking rank is marked dead in the shared [`ClusterState`]
    /// *before* its channels drop, and the cluster is poisoned, so peers
    /// blocked in collectives unwind promptly with typed
    /// [`crate::CommError::PeerDead`] / [`crate::CommError::Timeout`]
    /// errors instead of waiting forever. All threads are joined before
    /// this returns — teardown is complete either way.
    pub fn try_run_with<T, F>(
        world_size: usize,
        opts: &ClusterOptions,
        body: F,
    ) -> Result<Vec<T>, RankFailure>
    where
        T: Send,
        F: Fn(&Comm) -> T + Send + Sync,
    {
        assert!(world_size > 0, "cluster needs at least one rank");

        let state = Arc::new(ClusterState::new(world_size, opts.deadline));

        // Channel matrix: fabric[src][dst] is the (sender, receiver) pair
        // carrying src → dst traffic.
        let mut senders: Vec<Vec<_>> = Vec::with_capacity(world_size);
        let mut receivers: Vec<Vec<_>> = (0..world_size).map(|_| Vec::new()).collect();
        for _src in 0..world_size {
            let mut row = Vec::with_capacity(world_size);
            for dst_inbox in receivers.iter_mut() {
                let (tx, rx) = unbounded::<Payload>();
                row.push(tx);
                dst_inbox.push(rx);
            }
            senders.push(row);
        }

        let mut comms: Vec<Comm> = senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (tx_row, rx_row))| {
                Comm::new(rank, world_size, tx_row, rx_row, state.clone())
            })
            .collect();

        let body = &body;
        let state_ref = &state;
        let joined: Vec<(usize, std::thread::Result<T>)> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(world_size);
            for (rank, comm) in comms.drain(..).enumerate() {
                let state = state_ref.clone();
                handles.push((
                    rank,
                    scope.spawn(move |_| {
                        // Bind this thread to its rank's trace timeline
                        // (no-op while tracing is disabled).
                        ucp_telemetry::trace::register_rank(rank, "main");
                        let out = catch_unwind(AssertUnwindSafe(|| body(&comm)));
                        if out.is_err() {
                            // Mark dead while `comm` is still alive: peers
                            // must learn of the death before the channels
                            // disconnect underneath them.
                            state.mark_dead(rank);
                        }
                        drop(comm);
                        match out {
                            Ok(v) => Ok(v),
                            Err(payload) => Err(payload),
                        }
                    }),
                ));
            }
            handles
                .into_iter()
                .map(|(rank, h)| {
                    (
                        rank,
                        match h.join() {
                            Ok(inner) => inner,
                            // The spawn closure catches body panics, so a
                            // join error means the harness itself died.
                            Err(payload) => Err(payload),
                        },
                    )
                })
                .collect()
        })
        .expect("cluster scope");

        let mut results = Vec::with_capacity(world_size);
        let mut failures: Vec<(usize, String)> = Vec::new();
        for (rank, outcome) in joined {
            match outcome {
                Ok(v) => results.push(v),
                Err(payload) => failures.push((rank, payload_string(payload.as_ref()))),
            }
        }
        if failures.is_empty() {
            return Ok(results);
        }
        // Attribute the failure to the root cause, not a casualty of the
        // poison cascade. Two signals, in order of trust:
        //
        // 1. a payload that is NOT a secondary comm error — a rank that
        //    panicked on its own (e.g. an injected fault) rather than
        //    because a peer vanished underneath it;
        // 2. the first rank marked dead. This alone is not enough: when a
        //    rank *hangs*, its peers trip the watchdog, panic on the typed
        //    error, and get marked dead before the hung rank unwinds.
        let secondary = |m: &str| {
            m.contains("PeerDead")
                || m.contains("Timeout")
                || m.contains("Disconnected")
                || m.contains("peer rank")
                || m.contains("watchdog")
                || m.contains("is dead")
                || m.contains("disconnected")
        };
        let first_dead = state.first_dead().unwrap_or(failures[0].0);
        let primary: Vec<&(usize, String)> =
            failures.iter().filter(|(_, m)| !secondary(m)).collect();
        let (rank, payload) = primary
            .iter()
            .find(|(r, _)| *r == first_dead)
            .copied()
            .or_else(|| primary.first().copied())
            .or_else(|| failures.iter().find(|(r, _)| *r == first_dead))
            .unwrap_or(&failures[0])
            .clone();
        Err(RankFailure {
            rank,
            step: state.step_of(rank),
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Group, Payload};
    use ucp_tensor::Tensor;

    #[test]
    fn single_rank_runs() {
        let out = Cluster::run(1, |comm| comm.rank() * 10 + comm.world_size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn results_in_rank_order() {
        let out = Cluster::run(8, |comm| comm.rank());
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn point_to_point_ring() {
        let out = Cluster::run(4, |comm| {
            let next = (comm.rank() + 1) % 4;
            let prev = (comm.rank() + 3) % 4;
            comm.send(next, Payload::U64(comm.rank() as u64)).unwrap();
            match comm.recv(prev).unwrap() {
                Payload::U64(v) => v,
                _ => unreachable!(),
            }
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn all_reduce_sum_is_identical_everywhere() {
        let out = Cluster::run(4, |comm| {
            let g = Group::world(4);
            let t = Tensor::full([3], comm.rank() as f32 + 1.0);
            comm.all_reduce_sum(&g, &t).unwrap()
        });
        for t in &out {
            assert_eq!(t.as_slice(), &[10.0, 10.0, 10.0]);
        }
    }

    #[test]
    fn all_reduce_on_subgroup_only_touches_members() {
        let out = Cluster::run(4, |comm| {
            let g = if comm.rank() < 2 {
                Group::new(vec![0, 1]).unwrap()
            } else {
                Group::new(vec![2, 3]).unwrap()
            };
            let t = Tensor::full([1], comm.rank() as f32);
            comm.all_reduce_sum(&g, &t).unwrap().as_slice()[0]
        });
        assert_eq!(out, vec![1.0, 1.0, 5.0, 5.0]);
    }

    #[test]
    fn all_gather_preserves_member_order() {
        let out = Cluster::run(3, |comm| {
            let g = Group::world(3);
            let t = Tensor::full([1], comm.rank() as f32);
            let all = comm.all_gather_tensors(&g, &t).unwrap();
            all.iter().map(|t| t.as_slice()[0]).collect::<Vec<_>>()
        });
        for v in out {
            assert_eq!(v, vec![0.0, 1.0, 2.0]);
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let out = Cluster::run(3, |comm| {
            let g = Group::world(3);
            let payload = Payload::U64(comm.rank() as u64 * 100);
            match comm.broadcast(&g, 2, payload).unwrap() {
                Payload::U64(v) => v,
                _ => unreachable!(),
            }
        });
        assert_eq!(out, vec![200, 200, 200]);
    }

    #[test]
    fn reduce_scatter_chunks_the_sum() {
        let out = Cluster::run(2, |comm| {
            let g = Group::world(2);
            let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]).unwrap();
            comm.reduce_scatter_sum(&g, &t).unwrap()
        });
        assert_eq!(out[0].as_slice(), &[2.0, 4.0]);
        assert_eq!(out[1].as_slice(), &[6.0, 8.0]);
    }

    #[test]
    fn all_to_all_transposes_payloads() {
        let out = Cluster::run(3, |comm| {
            let g = Group::world(3);
            let outgoing = (0..3)
                .map(|dst| Payload::U64((comm.rank() * 10 + dst) as u64))
                .collect();
            comm.all_to_all(&g, outgoing)
                .unwrap()
                .into_iter()
                .map(|p| match p {
                    Payload::U64(v) => v,
                    _ => unreachable!(),
                })
                .collect::<Vec<_>>()
        });
        // Rank j receives value src*10 + j from every src, in src order.
        assert_eq!(out[0], vec![0, 10, 20]);
        assert_eq!(out[1], vec![1, 11, 21]);
        assert_eq!(out[2], vec![2, 12, 22]);
    }

    #[test]
    fn gather_and_scatter() {
        let out = Cluster::run(2, |comm| {
            let g = Group::world(2);
            let t = Tensor::full([2], comm.rank() as f32);
            let gathered = comm.gather_tensors(&g, 0, &t).unwrap();
            let to_scatter = if comm.rank() == 0 {
                Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0], [4]).unwrap()
            } else {
                Tensor::zeros([1])
            };
            let chunk = comm.scatter_chunks(&g, 0, &to_scatter).unwrap();
            (gathered.map(|v| v.len()), chunk)
        });
        assert_eq!(out[0].0, Some(2));
        assert_eq!(out[1].0, None);
        assert_eq!(out[0].1.as_slice(), &[7.0, 8.0]);
        assert_eq!(out[1].1.as_slice(), &[9.0, 10.0]);
    }

    #[test]
    fn f64_all_reduce_is_exact() {
        let out = Cluster::run(4, |comm| {
            let g = Group::world(4);
            let v = vec![0.1f64 * (comm.rank() as f64 + 1.0); 2];
            comm.all_reduce_sum_f64(&g, &v).unwrap()
        });
        let expected = 0.1 + 0.2 + 0.30000000000000004 + 0.4;
        for v in &out {
            assert!((v[0] - expected).abs() < 1e-15);
        }
        // All ranks agree bitwise.
        assert!(out.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn scalar_all_reduce() {
        let out = Cluster::run(3, |comm| {
            comm.all_reduce_scalar(&Group::world(3), comm.rank() as f64)
                .unwrap()
        });
        assert_eq!(out, vec![3.0, 3.0, 3.0]);
    }

    #[test]
    fn non_member_use_is_an_error() {
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 1 {
                let g = Group::new(vec![0]).unwrap();
                comm.barrier(&g).is_err()
            } else {
                let g = Group::new(vec![0]).unwrap();
                comm.barrier(&g).unwrap();
                true
            }
        });
        assert_eq!(out, vec![true, true]);
    }

    #[test]
    fn barrier_completes() {
        // Smoke test that repeated barriers on overlapping groups complete.
        Cluster::run(4, |comm| {
            let world = Group::world(4);
            let pair = Group::new(vec![comm.rank() & !1, comm.rank() | 1]).unwrap();
            for _ in 0..10 {
                comm.barrier(&world).unwrap();
                comm.barrier(&pair).unwrap();
            }
        });
    }

    // ---- Failure handling ----------------------------------------------

    use crate::CommError;
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    #[test]
    fn try_run_reports_rank_step_and_payload() {
        let failure = Cluster::try_run(2, |comm| {
            comm.set_step(7);
            if comm.rank() == 1 {
                panic!("injected fault on rank {}", comm.rank());
            }
            // Rank 0 blocks on its dead peer; the watchdog unwinds it.
            let _ = comm.recv(1);
        })
        .unwrap_err();
        assert_eq!(failure.rank, 1);
        assert_eq!(failure.step, 7);
        assert_eq!(failure.payload, "injected fault on rank 1");
    }

    #[test]
    fn run_preserves_panic_payload_and_rank() {
        let caught = std::panic::catch_unwind(|| {
            Cluster::run(2, |comm| {
                if comm.rank() == 1 {
                    panic!("original cause");
                }
                let _ = comm.recv(1);
            });
        })
        .unwrap_err();
        let msg = caught
            .downcast_ref::<String>()
            .expect("panic message is a string")
            .clone();
        assert!(msg.contains("rank 1"), "message names the rank: {msg}");
        assert!(
            msg.contains("original cause"),
            "message keeps the payload: {msg}"
        );
    }

    #[test]
    fn hung_peer_trips_timeout_within_deadline_on_all_blocked_ranks() {
        let opts = ClusterOptions {
            deadline: Duration::from_millis(200),
        };
        let started = Instant::now();
        let out = Cluster::try_run_with(3, &opts, |comm| {
            if comm.rank() == 0 {
                // Hung leader: never joins the barrier, but stays alive
                // until the poison broadcast reaches it.
                while !comm.poisoned() {
                    std::thread::sleep(Duration::from_millis(5));
                }
                return Ok(());
            }
            comm.barrier(&Group::world(3))
        })
        .expect("no rank panicked");
        // Blocked ranks unwound well before a forever-block would show.
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "collectives did not unwind promptly"
        );
        assert!(out[0].is_ok());
        let mut timeouts = 0;
        for r in &out[1..] {
            match r {
                // The first watchdog to fire reports Timeout and poisons
                // the cluster; a peer may then unwind with PeerDead.
                Err(CommError::Timeout { peer: 0, waited_ms }) => {
                    assert!(*waited_ms >= 200, "timeout fired early: {waited_ms} ms");
                    timeouts += 1;
                }
                Err(CommError::PeerDead { peer: 0 }) => {}
                other => panic!("expected a typed watchdog error, got {other:?}"),
            }
        }
        assert!(timeouts >= 1, "at least one rank must report the timeout");
    }

    #[test]
    fn no_collective_blocks_forever_once_a_rank_is_dead() {
        let seen = Mutex::new(None);
        let started = Instant::now();
        let failure = Cluster::try_run(2, |comm| {
            if comm.rank() == 1 {
                panic!("dead rank");
            }
            // All collective shapes must unwind with a typed error, not
            // hang: the dead mark lands before the channels disconnect.
            let g = Group::world(2);
            let err = comm
                .barrier(&g)
                .and_then(|_| comm.all_reduce_scalar(&g, 1.0).map(|_| ()))
                .and_then(|_| comm.recv(1).map(|_| ()))
                .unwrap_err();
            *seen.lock().unwrap() = Some(err);
        })
        .unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "rank 0 blocked on a dead peer"
        );
        assert_eq!(failure.rank, 1);
        assert_eq!(failure.payload, "dead rank");
        let err = seen.lock().unwrap().clone().expect("rank 0 saw an error");
        assert!(
            matches!(err, CommError::PeerDead { peer: 1 }),
            "expected PeerDead, got {err:?}"
        );
    }

    #[test]
    fn slow_rank_under_deadline_is_not_a_failure() {
        let opts = ClusterOptions {
            deadline: Duration::from_millis(2_000),
        };
        let out = Cluster::try_run_with(2, &opts, |comm| {
            if comm.rank() == 1 {
                std::thread::sleep(Duration::from_millis(50));
            }
            comm.barrier(&Group::world(2))
        })
        .expect("no failure");
        assert!(out.iter().all(|r| r.is_ok()));
    }
}
