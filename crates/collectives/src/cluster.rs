//! Cluster construction: spawn one thread per rank and wire the fabric.

use crossbeam::channel::unbounded;

use crate::comm::{Comm, Payload};

/// An in-process cluster of SPMD ranks.
///
/// [`Cluster::run`] stands in for `mpirun`/`torchrun`: it spawns
/// `world_size` threads, each executing `body` with its own [`Comm`], and
/// collects the per-rank return values in rank order.
pub struct Cluster;

impl Cluster {
    /// Run `body` on `world_size` ranks and return their results in rank
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if any rank's thread panics (the panic is propagated with the
    /// rank id), mirroring a fatal NCCL abort taking down the job.
    pub fn run<T, F>(world_size: usize, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Send + Sync,
    {
        assert!(world_size > 0, "cluster needs at least one rank");

        // Channel matrix: fabric[src][dst] is the (sender, receiver) pair
        // carrying src → dst traffic.
        let mut senders: Vec<Vec<_>> = Vec::with_capacity(world_size);
        let mut receivers: Vec<Vec<_>> = (0..world_size).map(|_| Vec::new()).collect();
        for _src in 0..world_size {
            let mut row = Vec::with_capacity(world_size);
            for dst_inbox in receivers.iter_mut() {
                let (tx, rx) = unbounded::<Payload>();
                row.push(tx);
                dst_inbox.push(rx);
            }
            senders.push(row);
        }

        let mut comms: Vec<Comm> = senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (tx_row, rx_row))| Comm::new(rank, world_size, tx_row, rx_row))
            .collect();

        let body = &body;
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(world_size);
            for (rank, comm) in comms.drain(..).enumerate() {
                handles.push((
                    rank,
                    scope.spawn(move |_| {
                        // Bind this thread to its rank's trace timeline
                        // (no-op while tracing is disabled).
                        ucp_telemetry::trace::register_rank(rank, "main");
                        body(&comm)
                    }),
                ));
            }
            handles
                .into_iter()
                .map(|(rank, h)| match h.join() {
                    Ok(v) => v,
                    Err(_) => panic!("rank {rank} panicked"),
                })
                .collect()
        })
        .expect("cluster scope")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Group, Payload};
    use ucp_tensor::Tensor;

    #[test]
    fn single_rank_runs() {
        let out = Cluster::run(1, |comm| comm.rank() * 10 + comm.world_size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn results_in_rank_order() {
        let out = Cluster::run(8, |comm| comm.rank());
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn point_to_point_ring() {
        let out = Cluster::run(4, |comm| {
            let next = (comm.rank() + 1) % 4;
            let prev = (comm.rank() + 3) % 4;
            comm.send(next, Payload::U64(comm.rank() as u64)).unwrap();
            match comm.recv(prev).unwrap() {
                Payload::U64(v) => v,
                _ => unreachable!(),
            }
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn all_reduce_sum_is_identical_everywhere() {
        let out = Cluster::run(4, |comm| {
            let g = Group::world(4);
            let t = Tensor::full([3], comm.rank() as f32 + 1.0);
            comm.all_reduce_sum(&g, &t).unwrap()
        });
        for t in &out {
            assert_eq!(t.as_slice(), &[10.0, 10.0, 10.0]);
        }
    }

    #[test]
    fn all_reduce_on_subgroup_only_touches_members() {
        let out = Cluster::run(4, |comm| {
            let g = if comm.rank() < 2 {
                Group::new(vec![0, 1]).unwrap()
            } else {
                Group::new(vec![2, 3]).unwrap()
            };
            let t = Tensor::full([1], comm.rank() as f32);
            comm.all_reduce_sum(&g, &t).unwrap().as_slice()[0]
        });
        assert_eq!(out, vec![1.0, 1.0, 5.0, 5.0]);
    }

    #[test]
    fn all_gather_preserves_member_order() {
        let out = Cluster::run(3, |comm| {
            let g = Group::world(3);
            let t = Tensor::full([1], comm.rank() as f32);
            let all = comm.all_gather_tensors(&g, &t).unwrap();
            all.iter().map(|t| t.as_slice()[0]).collect::<Vec<_>>()
        });
        for v in out {
            assert_eq!(v, vec![0.0, 1.0, 2.0]);
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let out = Cluster::run(3, |comm| {
            let g = Group::world(3);
            let payload = Payload::U64(comm.rank() as u64 * 100);
            match comm.broadcast(&g, 2, payload).unwrap() {
                Payload::U64(v) => v,
                _ => unreachable!(),
            }
        });
        assert_eq!(out, vec![200, 200, 200]);
    }

    #[test]
    fn reduce_scatter_chunks_the_sum() {
        let out = Cluster::run(2, |comm| {
            let g = Group::world(2);
            let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]).unwrap();
            comm.reduce_scatter_sum(&g, &t).unwrap()
        });
        assert_eq!(out[0].as_slice(), &[2.0, 4.0]);
        assert_eq!(out[1].as_slice(), &[6.0, 8.0]);
    }

    #[test]
    fn all_to_all_transposes_payloads() {
        let out = Cluster::run(3, |comm| {
            let g = Group::world(3);
            let outgoing = (0..3)
                .map(|dst| Payload::U64((comm.rank() * 10 + dst) as u64))
                .collect();
            comm.all_to_all(&g, outgoing)
                .unwrap()
                .into_iter()
                .map(|p| match p {
                    Payload::U64(v) => v,
                    _ => unreachable!(),
                })
                .collect::<Vec<_>>()
        });
        // Rank j receives value src*10 + j from every src, in src order.
        assert_eq!(out[0], vec![0, 10, 20]);
        assert_eq!(out[1], vec![1, 11, 21]);
        assert_eq!(out[2], vec![2, 12, 22]);
    }

    #[test]
    fn gather_and_scatter() {
        let out = Cluster::run(2, |comm| {
            let g = Group::world(2);
            let t = Tensor::full([2], comm.rank() as f32);
            let gathered = comm.gather_tensors(&g, 0, &t).unwrap();
            let to_scatter = if comm.rank() == 0 {
                Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0], [4]).unwrap()
            } else {
                Tensor::zeros([1])
            };
            let chunk = comm.scatter_chunks(&g, 0, &to_scatter).unwrap();
            (gathered.map(|v| v.len()), chunk)
        });
        assert_eq!(out[0].0, Some(2));
        assert_eq!(out[1].0, None);
        assert_eq!(out[0].1.as_slice(), &[7.0, 8.0]);
        assert_eq!(out[1].1.as_slice(), &[9.0, 10.0]);
    }

    #[test]
    fn f64_all_reduce_is_exact() {
        let out = Cluster::run(4, |comm| {
            let g = Group::world(4);
            let v = vec![0.1f64 * (comm.rank() as f64 + 1.0); 2];
            comm.all_reduce_sum_f64(&g, &v).unwrap()
        });
        let expected = 0.1 + 0.2 + 0.30000000000000004 + 0.4;
        for v in &out {
            assert!((v[0] - expected).abs() < 1e-15);
        }
        // All ranks agree bitwise.
        assert!(out.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn scalar_all_reduce() {
        let out = Cluster::run(3, |comm| {
            comm.all_reduce_scalar(&Group::world(3), comm.rank() as f64)
                .unwrap()
        });
        assert_eq!(out, vec![3.0, 3.0, 3.0]);
    }

    #[test]
    fn non_member_use_is_an_error() {
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 1 {
                let g = Group::new(vec![0]).unwrap();
                comm.barrier(&g).is_err()
            } else {
                let g = Group::new(vec![0]).unwrap();
                comm.barrier(&g).unwrap();
                true
            }
        });
        assert_eq!(out, vec![true, true]);
    }

    #[test]
    fn barrier_completes() {
        // Smoke test that repeated barriers on overlapping groups complete.
        Cluster::run(4, |comm| {
            let world = Group::world(4);
            let pair = Group::new(vec![comm.rank() & !1, comm.rank() | 1]).unwrap();
            for _ in 0..10 {
                comm.barrier(&world).unwrap();
                comm.barrier(&pair).unwrap();
            }
        });
    }
}
