//! Deterministic in-process SPMD cluster.
//!
//! The paper's substrate is a GPU cluster communicating over NCCL. Here a
//! "rank" is an OS thread and communication happens over per-pair FIFO
//! channels. Collectives are built on top of point-to-point messages with a
//! gather-to-leader / broadcast structure: the lowest rank of a group
//! receives every member's contribution *in rank order*, reduces with f64
//! accumulation, and sends the result back. This makes every collective
//! bitwise deterministic and independent of thread scheduling — a property
//! real GPU training lacks (the paper's Table 3 tolerates a ±0.02 loss band
//! for exactly this reason) and which lets our tests assert far tighter.
//!
//! SPMD contract: all members of a group must call the same sequence of
//! collectives on that group. Because each rank executes sequentially and
//! channels between any pair are FIFO, matching operations pair up in
//! program order; violating the contract deadlocks or mismatches payloads
//! (caught by a payload-kind check).

pub mod cluster;
pub mod comm;
pub mod exchange;
pub mod group;

pub use cluster::{Cluster, ClusterOptions, RankFailure};
pub use comm::{Comm, Payload};
pub use exchange::Endpoint;
pub use group::Group;

/// Errors surfaced by the communication layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A received payload had a different kind than the operation expected.
    PayloadKindMismatch {
        /// What the caller expected.
        expected: &'static str,
        /// What arrived.
        got: &'static str,
    },
    /// A peer disconnected (its thread panicked or exited early).
    Disconnected {
        /// The peer rank.
        peer: usize,
    },
    /// A peer was marked dead by the cluster (its body panicked), or the
    /// cluster was poisoned by a failure elsewhere and this rank is
    /// unwinding instead of waiting on traffic that may never come.
    PeerDead {
        /// The dead peer (or the first dead rank when unwinding on poison).
        peer: usize,
    },
    /// The watchdog deadline elapsed while waiting on a peer that is still
    /// connected but not making progress (a hung rank).
    Timeout {
        /// The peer this rank was blocked on.
        peer: usize,
        /// How long the rank waited before giving up.
        waited_ms: u64,
    },
    /// The calling rank is not a member of the group it used.
    NotAMember {
        /// The calling rank.
        rank: usize,
    },
    /// Group construction was invalid (empty, duplicates, or out of range).
    InvalidGroup(String),
}

impl CommError {
    /// True for errors that describe *another* rank's failure arriving at
    /// this rank (disconnect, death, watchdog timeout) rather than a local
    /// programming error. Supervisors use this to separate the root-cause
    /// failure from the sympathetic unwinding of surviving ranks.
    pub fn is_peer_failure(&self) -> bool {
        matches!(
            self,
            CommError::Disconnected { .. } | CommError::PeerDead { .. } | CommError::Timeout { .. }
        )
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PayloadKindMismatch { expected, got } => {
                write!(f, "payload kind mismatch: expected {expected}, got {got}")
            }
            CommError::Disconnected { peer } => write!(f, "peer rank {peer} disconnected"),
            CommError::PeerDead { peer } => write!(f, "peer rank {peer} is dead"),
            CommError::Timeout { peer, waited_ms } => {
                write!(
                    f,
                    "watchdog timeout: no progress from rank {peer} after {waited_ms} ms"
                )
            }
            CommError::NotAMember { rank } => {
                write!(f, "rank {rank} is not a member of the group")
            }
            CommError::InvalidGroup(msg) => write!(f, "invalid group: {msg}"),
        }
    }
}

impl std::error::Error for CommError {}

/// Result alias for communication operations.
pub type Result<T> = std::result::Result<T, CommError>;
