//! Out-of-band typed message exchange between background threads.
//!
//! The save pipeline's overlapped writers assemble universal atoms across
//! ranks *while training continues*, so they cannot borrow the cluster's
//! [`crate::Comm`] endpoints (those belong to the training threads and
//! carry the SPMD collective traffic). Two flavors are provided:
//!
//! * [`endpoints`] builds a disposable all-to-all mesh of per-pair FIFO
//!   channels for a single exchange round (used e.g. by fleet metric
//!   gathering).
//! * [`Mesh`] is a *persistent* all-to-all fabric whose O(world²) channels
//!   are created once and reused across many exchange rounds. Each round
//!   (a save step) claims an [`EpochLease`] tagged with a monotonically
//!   increasing epoch; messages of different epochs share the underlying
//!   channels and are demultiplexed at the receiving port, so per-pair
//!   FIFO order holds *within* an epoch regardless of interleaving.
//!
//! Failure semantics mirror the main fabric: when a writer dies, the hangup
//! of its channel endpoints surfaces at every peer as
//! [`CommError::Disconnected`] on the next receive, and a deadline converts
//! a silently-hung peer into [`CommError::Timeout`]. A lease dropped
//! without [`EpochLease::finish`] broadcasts an abort for its epoch so
//! peers see `Disconnected` promptly instead of waiting out the deadline.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::CommError;

/// One rank's endpoint of a disposable all-to-all exchange: a sender to
/// every rank and a receiver from every rank (including itself — self
/// channels keep send/receive code uniform and are FIFO like any other).
pub struct Endpoint<M> {
    rank: usize,
    txs: Vec<Sender<M>>,
    rxs: Vec<Receiver<M>>,
}

/// Build the endpoints of a `world`-rank exchange. Endpoint `r` belongs to
/// rank `r`; the vector is indexed by rank.
pub fn endpoints<M: Send>(world: usize) -> Vec<Endpoint<M>> {
    let mut txs: Vec<Vec<Sender<M>>> = (0..world).map(|_| Vec::with_capacity(world)).collect();
    let mut rxs: Vec<Vec<Receiver<M>>> = (0..world).map(|_| Vec::with_capacity(world)).collect();
    for dst_rxs in rxs.iter_mut() {
        for src_txs in txs.iter_mut() {
            let (tx, rx) = channel();
            src_txs.push(tx);
            dst_rxs.push(rx);
        }
    }
    txs.into_iter()
        .zip(rxs)
        .enumerate()
        .map(|(rank, (txs, rxs))| Endpoint { rank, txs, rxs })
        .collect()
}

impl<M> Endpoint<M> {
    /// The owning rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the exchange.
    pub fn world(&self) -> usize {
        self.txs.len()
    }

    /// Send `msg` to rank `to`. Never blocks (channels are unbounded);
    /// fails with [`CommError::Disconnected`] if the destination endpoint
    /// was dropped (its writer died or never ran).
    pub fn send(&self, to: usize, msg: M) -> Result<(), CommError> {
        self.txs[to]
            .send(msg)
            .map_err(|_| CommError::Disconnected { peer: to })
    }

    /// Receive the next message rank `from` sent to this rank, waiting at
    /// most `deadline`. Per-pair channels are FIFO, so messages from one
    /// peer arrive in its send order regardless of interleaving with other
    /// peers.
    pub fn recv_from(&self, from: usize, deadline: Duration) -> Result<M, CommError> {
        self.rxs[from].recv_timeout(deadline).map_err(|e| match e {
            RecvTimeoutError::Timeout => CommError::Timeout {
                peer: from,
                waited_ms: deadline.as_millis() as u64,
            },
            RecvTimeoutError::Disconnected => CommError::Disconnected { peer: from },
        })
    }
}

/// How long a blocked [`EpochLease::recv_from`] sleeps between checks of
/// its underlying channel when no doorbell rings. Sends and aborts notify
/// the destination port directly, so this tick only bounds how stale a
/// *hangup* (all senders dropped, which rings no doorbell) can go
/// unnoticed.
const MESH_POLL_TICK: Duration = Duration::from_millis(25);

/// Retired/aborted epoch bookkeeping kept per port. Epochs are claimed
/// monotonically, so old entries only matter for stragglers; a small
/// window bounds memory over arbitrarily long runs.
const EPOCH_HISTORY: usize = 64;

/// On-the-wire frame of a [`Mesh`] channel: an epoch tag plus either a
/// payload or an abort notice (`None`) for that epoch.
struct Envelope<M> {
    epoch: u64,
    payload: Option<M>,
}

/// Receive-side demultiplexer state for one (dst, src) channel.
struct PortState<M> {
    rx: Receiver<Envelope<M>>,
    /// Messages drained off the channel for epochs other than the one a
    /// receiver was waiting on, in arrival (= per-epoch send) order.
    stash: HashMap<u64, VecDeque<M>>,
    /// Epochs whose sender aborted (lease dropped without `finish`).
    aborted: BTreeSet<u64>,
    /// Epochs this port is done with; late envelopes for them are dropped.
    retired: BTreeSet<u64>,
    /// All senders for this channel are gone (mesh and leases dropped).
    hangup: bool,
}

struct Port<M> {
    state: Mutex<PortState<M>>,
    bell: Condvar,
}

impl<M> Port<M> {
    fn new(rx: Receiver<Envelope<M>>) -> Port<M> {
        Port {
            state: Mutex::new(PortState {
                rx,
                stash: HashMap::new(),
                aborted: BTreeSet::new(),
                retired: BTreeSet::new(),
                hangup: false,
            }),
            bell: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, PortState<M>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn recv(&self, from: usize, epoch: u64, deadline: Duration) -> Result<M, CommError> {
        let end = Instant::now() + deadline;
        let mut st = self.lock();
        loop {
            // Anything a different-epoch receiver drained for us comes
            // first: it left the channel before whatever is still queued.
            if let Some(q) = st.stash.get_mut(&epoch) {
                if let Some(m) = q.pop_front() {
                    return Ok(m);
                }
            }
            if st.aborted.contains(&epoch) {
                return Err(CommError::Disconnected { peer: from });
            }
            // Drain the shared channel, returning on our own epoch and
            // stashing others (waking their receivers).
            loop {
                match st.rx.try_recv() {
                    Ok(env) => {
                        if st.retired.contains(&env.epoch) {
                            continue;
                        }
                        match env.payload {
                            Some(m) if env.epoch == epoch => return Ok(m),
                            Some(m) => {
                                st.stash.entry(env.epoch).or_default().push_back(m);
                                self.bell.notify_all();
                            }
                            None => {
                                st.aborted.insert(env.epoch);
                                trim_history(&mut st.aborted);
                                self.bell.notify_all();
                                if env.epoch == epoch {
                                    return Err(CommError::Disconnected { peer: from });
                                }
                            }
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        st.hangup = true;
                        break;
                    }
                }
            }
            if st.hangup {
                return Err(CommError::Disconnected { peer: from });
            }
            let now = Instant::now();
            if now >= end {
                return Err(CommError::Timeout {
                    peer: from,
                    waited_ms: deadline.as_millis() as u64,
                });
            }
            let wait = (end - now).min(MESH_POLL_TICK);
            st = self
                .bell
                .wait_timeout(st, wait)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    fn retire(&self, epoch: u64) {
        let mut st = self.lock();
        st.stash.remove(&epoch);
        st.aborted.remove(&epoch);
        st.retired.insert(epoch);
        trim_history(&mut st.retired);
    }
}

fn trim_history(set: &mut BTreeSet<u64>) {
    while set.len() > EPOCH_HISTORY {
        set.pop_first();
    }
}

/// `ports[dst][src]` — the receive side of every channel in the mesh.
struct PortTable<M> {
    ports: Vec<Vec<Port<M>>>,
}

/// A persistent all-to-all exchange fabric. Channels (O(world²)) are
/// created once in [`Mesh::new`]; every save step then claims one
/// [`EpochLease`] per rank via [`Mesh::lease`] instead of wiring a fresh
/// mesh. Epochs must be claimed with increasing tags per rank and a
/// (rank, epoch) pair must be claimed at most once — the save pipeline
/// enforces this with the step number as the epoch.
pub struct Mesh<M> {
    txs: Vec<Vec<Sender<Envelope<M>>>>,
    ports: Arc<PortTable<M>>,
}

impl<M: Send> Mesh<M> {
    /// Build the persistent fabric for a `world`-rank exchange.
    pub fn new(world: usize) -> Mesh<M> {
        let mut txs: Vec<Vec<Sender<Envelope<M>>>> =
            (0..world).map(|_| Vec::with_capacity(world)).collect();
        let mut ports: Vec<Vec<Port<M>>> = Vec::with_capacity(world);
        for _dst in 0..world {
            let mut row = Vec::with_capacity(world);
            for src_txs in txs.iter_mut() {
                let (tx, rx) = channel();
                src_txs.push(tx);
                row.push(Port::new(rx));
            }
            ports.push(row);
        }
        Mesh {
            txs,
            ports: Arc::new(PortTable { ports }),
        }
    }

    /// Number of ranks in the exchange.
    pub fn world(&self) -> usize {
        self.txs.len()
    }

    /// Claim rank `rank`'s endpoint for one exchange round tagged `epoch`.
    pub fn lease(&self, rank: usize, epoch: u64) -> EpochLease<M> {
        EpochLease {
            rank,
            epoch,
            txs: self.txs[rank].clone(),
            ports: Arc::clone(&self.ports),
            finished: false,
        }
    }
}

/// One rank's claim on a [`Mesh`] for a single exchange round. API mirrors
/// [`Endpoint`]: unbounded FIFO sends, deadline receives addressed by
/// source rank. Dropping the lease without calling
/// [`finish`](EpochLease::finish) broadcasts an abort so peers waiting on
/// this epoch fail with [`CommError::Disconnected`] promptly.
pub struct EpochLease<M> {
    rank: usize,
    epoch: u64,
    txs: Vec<Sender<Envelope<M>>>,
    ports: Arc<PortTable<M>>,
    finished: bool,
}

impl<M: Send> EpochLease<M> {
    /// The owning rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the exchange.
    pub fn world(&self) -> usize {
        self.txs.len()
    }

    /// The epoch tag of this round.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Send `msg` to rank `to` under this lease's epoch. Never blocks;
    /// fails with [`CommError::Disconnected`] if the mesh (and every lease
    /// of the destination) was dropped.
    pub fn send(&self, to: usize, msg: M) -> Result<(), CommError> {
        self.txs[to]
            .send(Envelope {
                epoch: self.epoch,
                payload: Some(msg),
            })
            .map_err(|_| CommError::Disconnected { peer: to })?;
        self.ports.ports[to][self.rank].bell.notify_all();
        Ok(())
    }

    /// Receive the next message rank `from` sent to this rank under this
    /// epoch, waiting at most `deadline`. Per-(pair, epoch) FIFO holds:
    /// messages from one peer within one epoch arrive in send order,
    /// regardless of interleaving with other peers or epochs.
    pub fn recv_from(&self, from: usize, deadline: Duration) -> Result<M, CommError> {
        self.ports.ports[self.rank][from].recv(from, self.epoch, deadline)
    }

    /// Mark the round complete: no abort is broadcast on drop, and this
    /// rank's ports retire the epoch (late stragglers are dropped).
    pub fn finish(mut self) {
        self.finished = true;
    }
}

impl<M> Drop for EpochLease<M> {
    fn drop(&mut self) {
        if !self.finished {
            for (to, tx) in self.txs.iter().enumerate() {
                if tx
                    .send(Envelope {
                        epoch: self.epoch,
                        payload: None,
                    })
                    .is_ok()
                {
                    self.ports.ports[to][self.rank].bell.notify_all();
                }
            }
        }
        for port in &self.ports.ports[self.rank] {
            port.retire(self.epoch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_secs(5);

    #[test]
    fn roundtrip_across_threads() {
        let mut eps = endpoints::<(usize, String)>(3);
        let e2 = eps.pop().unwrap();
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        let t1 = std::thread::spawn(move || {
            e1.send(0, (1, "from one".into())).unwrap();
        });
        let t2 = std::thread::spawn(move || {
            e2.send(0, (2, "from two".into())).unwrap();
        });
        // Receives are addressed by source, so arrival interleaving across
        // peers doesn't matter.
        let (r2, m2) = e0.recv_from(2, TICK).unwrap();
        let (r1, m1) = e0.recv_from(1, TICK).unwrap();
        assert_eq!((r1, m1.as_str()), (1, "from one"));
        assert_eq!((r2, m2.as_str()), (2, "from two"));
        t1.join().unwrap();
        t2.join().unwrap();
    }

    #[test]
    fn self_channel_is_fifo() {
        let mut eps = endpoints::<u32>(1);
        let e = eps.pop().unwrap();
        e.send(0, 7).unwrap();
        e.send(0, 8).unwrap();
        assert_eq!(e.recv_from(0, TICK).unwrap(), 7);
        assert_eq!(e.recv_from(0, TICK).unwrap(), 8);
    }

    #[test]
    fn dropped_peer_surfaces_as_disconnected() {
        let mut eps = endpoints::<u32>(2);
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        drop(e1);
        assert_eq!(
            e0.recv_from(1, TICK).unwrap_err(),
            CommError::Disconnected { peer: 1 }
        );
        assert_eq!(
            e0.send(1, 3).unwrap_err(),
            CommError::Disconnected { peer: 1 }
        );
    }

    #[test]
    fn silent_peer_surfaces_as_timeout() {
        let eps = endpoints::<u32>(2);
        let err = eps[0].recv_from(1, Duration::from_millis(10)).unwrap_err();
        assert_eq!(
            err,
            CommError::Timeout {
                peer: 1,
                waited_ms: 10
            }
        );
    }

    #[test]
    fn mesh_reuse_preserves_fifo_across_consecutive_epochs() {
        // One mesh, many save rounds: per-pair FIFO must hold within each
        // epoch exactly as it did with disposable endpoints.
        let mesh = Mesh::<(u64, u32)>::new(2);
        for epoch in 1..=5u64 {
            let tx_lease = mesh.lease(1, epoch);
            let rx_lease = mesh.lease(0, epoch);
            let t = std::thread::spawn(move || {
                for i in 0..4u32 {
                    tx_lease.send(0, (epoch, i)).unwrap();
                }
                tx_lease.finish();
            });
            for i in 0..4u32 {
                assert_eq!(rx_lease.recv_from(1, TICK).unwrap(), (epoch, i));
            }
            rx_lease.finish();
            t.join().unwrap();
        }
    }

    #[test]
    fn concurrent_epochs_demux_on_shared_channels() {
        // Two rounds in flight at once (step N draining while step N+1
        // starts): each receiver sees only its own epoch, in order, even
        // though both rounds share the same per-pair channel.
        let mesh = Mesh::<(u64, u32)>::new(2);
        let send_a = mesh.lease(1, 10);
        let send_b = mesh.lease(1, 11);
        let recv_a = mesh.lease(0, 10);
        let recv_b = mesh.lease(0, 11);
        for i in 0..3u32 {
            send_a.send(0, (10, i)).unwrap();
            send_b.send(0, (11, i)).unwrap();
        }
        send_a.finish();
        send_b.finish();
        // Drain the newer epoch first so the older one's messages must be
        // stashed and then replayed in order.
        let tb = std::thread::spawn(move || {
            for i in 0..3u32 {
                assert_eq!(recv_b.recv_from(1, TICK).unwrap(), (11, i));
            }
            recv_b.finish();
        });
        tb.join().unwrap();
        for i in 0..3u32 {
            assert_eq!(recv_a.recv_from(1, TICK).unwrap(), (10, i));
        }
        recv_a.finish();
    }

    #[test]
    fn dropped_lease_aborts_its_epoch_promptly() {
        let mesh = Mesh::<u32>::new(2);
        let receiver = mesh.lease(0, 7);
        let dead = mesh.lease(1, 7);
        drop(dead); // writer died without finish(): abort broadcast
        let start = Instant::now();
        assert_eq!(
            receiver.recv_from(1, TICK).unwrap_err(),
            CommError::Disconnected { peer: 1 }
        );
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "abort must beat the deadline"
        );
        // The abort is scoped to its epoch: a later round on the same
        // mesh is unaffected.
        let rx2 = mesh.lease(0, 8);
        let tx2 = mesh.lease(1, 8);
        tx2.send(0, 42).unwrap();
        tx2.finish();
        assert_eq!(rx2.recv_from(1, TICK).unwrap(), 42);
        rx2.finish();
    }

    #[test]
    fn finished_lease_does_not_abort_but_mesh_teardown_hangs_up() {
        let mesh = Mesh::<u32>::new(2);
        let rx = mesh.lease(0, 1);
        let tx = mesh.lease(1, 1);
        tx.send(0, 5).unwrap();
        tx.finish(); // normal completion: no abort
        assert_eq!(rx.recv_from(1, TICK).unwrap(), 5);
        // With the mesh and every lease of rank 1 gone, the channel hangs
        // up and the receiver sees Disconnected, not a deadline stall.
        drop(mesh);
        assert_eq!(
            rx.recv_from(1, TICK).unwrap_err(),
            CommError::Disconnected { peer: 1 }
        );
    }

    #[test]
    fn mesh_deadline_surfaces_as_timeout() {
        let mesh = Mesh::<u32>::new(2);
        let rx = mesh.lease(0, 3);
        let _quiet = mesh.lease(1, 3); // claimed but silent
        let err = rx.recv_from(1, Duration::from_millis(10)).unwrap_err();
        assert_eq!(
            err,
            CommError::Timeout {
                peer: 1,
                waited_ms: 10
            }
        );
    }

    mod mesh_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Random interleavings of sends from two peers across up to
            /// three concurrent epochs: every (peer, epoch) stream is
            /// received complete and in send order.
            #[test]
            fn prop_mesh_fifo_per_pair_per_epoch(
                schedule in prop::collection::vec((0usize..2, 0u64..3), 1..40),
            ) {
                let mesh = Mesh::<(usize, u64, u32)>::new(3);
                let epochs = [100u64, 101, 102];
                // Receivers for rank 2, one lease per epoch.
                let rx: Vec<_> = epochs.iter().map(|&e| mesh.lease(2, e)).collect();
                // Senders: ranks 0 and 1, one lease per epoch each.
                let tx: Vec<Vec<_>> = (0..2)
                    .map(|r| epochs.iter().map(|&e| mesh.lease(r, e)).collect())
                    .collect();
                let mut sent: std::collections::HashMap<(usize, u64), Vec<u32>> =
                    std::collections::HashMap::new();
                for (i, &(peer, ei)) in schedule.iter().enumerate() {
                    let epoch = epochs[ei as usize];
                    tx[peer][ei as usize].send(2, (peer, epoch, i as u32)).unwrap();
                    sent.entry((peer, epoch)).or_default().push(i as u32);
                }
                for ((peer, epoch), ids) in &sent {
                    let ei = epochs.iter().position(|e| e == epoch).unwrap();
                    for &id in ids {
                        let got = rx[ei].recv_from(*peer, TICK).unwrap();
                        prop_assert_eq!(got, (*peer, *epoch, id));
                    }
                }
            }
        }
    }
}
