//! Out-of-band typed message exchange between background threads.
//!
//! The save pipeline's overlapped writers assemble universal atoms across
//! ranks *while training continues*, so they cannot borrow the cluster's
//! [`crate::Comm`] endpoints (those belong to the training threads and
//! carry the SPMD collective traffic). Instead each save step gets its own
//! disposable all-to-all mesh of per-pair FIFO channels, created up front
//! on the launching thread and handed one endpoint per rank to the
//! background writers.
//!
//! Failure semantics mirror the main fabric: when a writer dies, the hangup
//! of its channel endpoints surfaces at every peer as
//! [`CommError::Disconnected`] on the next receive, and a deadline converts
//! a silently-hung peer into [`CommError::Timeout`].

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

use crate::CommError;

/// One rank's endpoint of a disposable all-to-all exchange: a sender to
/// every rank and a receiver from every rank (including itself — self
/// channels keep send/receive code uniform and are FIFO like any other).
pub struct Endpoint<M> {
    rank: usize,
    txs: Vec<Sender<M>>,
    rxs: Vec<Receiver<M>>,
}

/// Build the endpoints of a `world`-rank exchange. Endpoint `r` belongs to
/// rank `r`; the vector is indexed by rank.
pub fn endpoints<M: Send>(world: usize) -> Vec<Endpoint<M>> {
    let mut txs: Vec<Vec<Sender<M>>> = (0..world).map(|_| Vec::with_capacity(world)).collect();
    let mut rxs: Vec<Vec<Receiver<M>>> = (0..world).map(|_| Vec::with_capacity(world)).collect();
    for dst_rxs in rxs.iter_mut() {
        for src_txs in txs.iter_mut() {
            let (tx, rx) = channel();
            src_txs.push(tx);
            dst_rxs.push(rx);
        }
    }
    txs.into_iter()
        .zip(rxs)
        .enumerate()
        .map(|(rank, (txs, rxs))| Endpoint { rank, txs, rxs })
        .collect()
}

impl<M> Endpoint<M> {
    /// The owning rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the exchange.
    pub fn world(&self) -> usize {
        self.txs.len()
    }

    /// Send `msg` to rank `to`. Never blocks (channels are unbounded);
    /// fails with [`CommError::Disconnected`] if the destination endpoint
    /// was dropped (its writer died or never ran).
    pub fn send(&self, to: usize, msg: M) -> Result<(), CommError> {
        self.txs[to]
            .send(msg)
            .map_err(|_| CommError::Disconnected { peer: to })
    }

    /// Receive the next message rank `from` sent to this rank, waiting at
    /// most `deadline`. Per-pair channels are FIFO, so messages from one
    /// peer arrive in its send order regardless of interleaving with other
    /// peers.
    pub fn recv_from(&self, from: usize, deadline: Duration) -> Result<M, CommError> {
        self.rxs[from].recv_timeout(deadline).map_err(|e| match e {
            RecvTimeoutError::Timeout => CommError::Timeout {
                peer: from,
                waited_ms: deadline.as_millis() as u64,
            },
            RecvTimeoutError::Disconnected => CommError::Disconnected { peer: from },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_secs(5);

    #[test]
    fn roundtrip_across_threads() {
        let mut eps = endpoints::<(usize, String)>(3);
        let e2 = eps.pop().unwrap();
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        let t1 = std::thread::spawn(move || {
            e1.send(0, (1, "from one".into())).unwrap();
        });
        let t2 = std::thread::spawn(move || {
            e2.send(0, (2, "from two".into())).unwrap();
        });
        // Receives are addressed by source, so arrival interleaving across
        // peers doesn't matter.
        let (r2, m2) = e0.recv_from(2, TICK).unwrap();
        let (r1, m1) = e0.recv_from(1, TICK).unwrap();
        assert_eq!((r1, m1.as_str()), (1, "from one"));
        assert_eq!((r2, m2.as_str()), (2, "from two"));
        t1.join().unwrap();
        t2.join().unwrap();
    }

    #[test]
    fn self_channel_is_fifo() {
        let mut eps = endpoints::<u32>(1);
        let e = eps.pop().unwrap();
        e.send(0, 7).unwrap();
        e.send(0, 8).unwrap();
        assert_eq!(e.recv_from(0, TICK).unwrap(), 7);
        assert_eq!(e.recv_from(0, TICK).unwrap(), 8);
    }

    #[test]
    fn dropped_peer_surfaces_as_disconnected() {
        let mut eps = endpoints::<u32>(2);
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        drop(e1);
        assert_eq!(
            e0.recv_from(1, TICK).unwrap_err(),
            CommError::Disconnected { peer: 1 }
        );
        assert_eq!(
            e0.send(1, 3).unwrap_err(),
            CommError::Disconnected { peer: 1 }
        );
    }

    #[test]
    fn silent_peer_surfaces_as_timeout() {
        let eps = endpoints::<u32>(2);
        let err = eps[0].recv_from(1, Duration::from_millis(10)).unwrap_err();
        assert_eq!(
            err,
            CommError::Timeout {
                peer: 1,
                waited_ms: 10
            }
        );
    }
}
