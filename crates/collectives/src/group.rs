//! Process groups: ordered subsets of ranks that communicate collectively.

use crate::{CommError, Result};

/// An ordered communication group.
///
/// Mirrors NCCL/`torch.distributed` process groups: the data-parallel group,
/// tensor-parallel group, pipeline stage neighbours, etc. Member order is
/// the *reduction order* for deterministic collectives, so construction
/// sorts members ascending; the leader is the smallest rank.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Group {
    members: Vec<usize>,
}

impl Group {
    /// Create a group from member ranks. Members are sorted; duplicates are
    /// rejected.
    pub fn new(mut members: Vec<usize>) -> Result<Group> {
        if members.is_empty() {
            return Err(CommError::InvalidGroup("empty member list".into()));
        }
        members.sort_unstable();
        if members.windows(2).any(|w| w[0] == w[1]) {
            return Err(CommError::InvalidGroup(format!(
                "duplicate members in {members:?}"
            )));
        }
        Ok(Group { members })
    }

    /// A group over all ranks `0..world_size`.
    pub fn world(world_size: usize) -> Group {
        Group {
            members: (0..world_size).collect(),
        }
    }

    /// The ordered member list.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The group leader (smallest member rank); collectives reduce here.
    pub fn leader(&self) -> usize {
        self.members[0]
    }

    /// Index of `rank` within the group, if a member.
    pub fn index_of(&self, rank: usize) -> Option<usize> {
        self.members.binary_search(&rank).ok()
    }

    /// True if `rank` is a member.
    pub fn contains(&self, rank: usize) -> bool {
        self.index_of(rank).is_some()
    }

    /// Compact label for traces: `first-last` for contiguous member ranges,
    /// comma-separated ranks otherwise.
    pub fn label(&self) -> String {
        let first = self.members[0];
        let last = self.members[self.members.len() - 1];
        if last - first + 1 == self.members.len() {
            if first == last {
                format!("{first}")
            } else {
                format!("{first}-{last}")
            }
        } else {
            let parts: Vec<String> = self.members.iter().map(|m| m.to_string()).collect();
            parts.join(",")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_members() {
        let g = Group::new(vec![3, 1, 2]).unwrap();
        assert_eq!(g.members(), &[1, 2, 3]);
        assert_eq!(g.leader(), 1);
        assert_eq!(g.size(), 3);
    }

    #[test]
    fn rejects_empty_and_duplicates() {
        assert!(Group::new(vec![]).is_err());
        assert!(Group::new(vec![1, 1]).is_err());
    }

    #[test]
    fn index_and_membership() {
        let g = Group::new(vec![0, 4, 2]).unwrap();
        assert_eq!(g.index_of(4), Some(2));
        assert_eq!(g.index_of(3), None);
        assert!(g.contains(0));
        assert!(!g.contains(5));
    }

    #[test]
    fn world_covers_all_ranks() {
        let g = Group::world(4);
        assert_eq!(g.members(), &[0, 1, 2, 3]);
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(Group::world(4).label(), "0-3");
        assert_eq!(Group::new(vec![2]).unwrap().label(), "2");
        assert_eq!(Group::new(vec![0, 2, 5]).unwrap().label(), "0,2,5");
    }
}
