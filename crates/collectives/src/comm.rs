//! Per-rank communicators: point-to-point messaging and deterministic
//! collectives built on top of it.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use ucp_telemetry::trace;
use ucp_tensor::Tensor;

use crate::{group::Group, CommError, Result};

/// Shared failure-detection state of one cluster: which ranks are dead,
/// whether the cluster is poisoned, and each rank's last reported step.
///
/// A rank is *dead* once its body has panicked (marked before its channels
/// drop, so peers see a typed [`CommError::PeerDead`] instead of a bare
/// disconnect). Poison is the broadcast form of that knowledge: once set,
/// every blocked `recv` unwinds at its next watchdog tick instead of
/// waiting out traffic that will never come.
pub(crate) struct ClusterState {
    dead: Vec<AtomicBool>,
    poisoned: AtomicBool,
    /// First rank marked dead (`usize::MAX` = none); CAS'd once so the
    /// root cause survives cascades.
    first_dead: AtomicUsize,
    /// Last step each rank reported via [`Comm::set_step`].
    steps: Vec<AtomicU64>,
    /// Watchdog deadline for blocking receives.
    deadline: Duration,
}

impl ClusterState {
    pub(crate) fn new(world_size: usize, deadline: Duration) -> ClusterState {
        ClusterState {
            dead: (0..world_size).map(|_| AtomicBool::new(false)).collect(),
            poisoned: AtomicBool::new(false),
            first_dead: AtomicUsize::new(usize::MAX),
            steps: (0..world_size).map(|_| AtomicU64::new(0)).collect(),
            deadline,
        }
    }

    /// Mark `rank` dead and poison the cluster.
    pub(crate) fn mark_dead(&self, rank: usize) {
        self.dead[rank].store(true, Ordering::SeqCst);
        let _ =
            self.first_dead
                .compare_exchange(usize::MAX, rank, Ordering::SeqCst, Ordering::SeqCst);
        self.poisoned.store(true, Ordering::SeqCst);
    }

    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    pub(crate) fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank].load(Ordering::SeqCst)
    }

    /// The first rank marked dead, if any.
    pub(crate) fn first_dead(&self) -> Option<usize> {
        match self.first_dead.load(Ordering::SeqCst) {
            usize::MAX => None,
            r => Some(r),
        }
    }

    pub(crate) fn step_of(&self, rank: usize) -> u64 {
        self.steps[rank].load(Ordering::SeqCst)
    }
}

/// A message payload exchanged between ranks.
///
/// `F64` exists so gradient reduction can travel at full double precision:
/// the trainer accumulates microbatch gradients in f64 and reduces in f64,
/// making the result effectively independent of the data-parallel layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A tensor (shape + f32 values).
    Tensor(Tensor),
    /// Raw f64 vector (gradient accumulators).
    F64(Vec<f64>),
    /// Raw u32 vector (token ids).
    U32(Vec<u32>),
    /// Opaque bytes (serialized control state).
    Bytes(Vec<u8>),
    /// A single integer (control messages, sizes).
    U64(u64),
}

impl Payload {
    fn kind(&self) -> &'static str {
        match self {
            Payload::Tensor(_) => "tensor",
            Payload::F64(_) => "f64",
            Payload::U32(_) => "u32",
            Payload::Bytes(_) => "bytes",
            Payload::U64(_) => "u64",
        }
    }

    /// Approximate wire size in bytes (element counts times element width;
    /// shape/enum overhead ignored). Used for trace attribution.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Payload::Tensor(t) => 4 * t.num_elements() as u64,
            Payload::F64(v) => 8 * v.len() as u64,
            Payload::U32(v) => 4 * v.len() as u64,
            Payload::Bytes(b) => b.len() as u64,
            Payload::U64(_) => 8,
        }
    }
}

macro_rules! expect_payload {
    ($expr:expr, $variant:ident, $name:literal) => {
        match $expr {
            Payload::$variant(v) => Ok(v),
            other => Err(CommError::PayloadKindMismatch {
                expected: $name,
                got: other.kind(),
            }),
        }
    };
}

/// The per-rank handle to the cluster's communication fabric.
///
/// One `Comm` is handed to each rank closure by [`crate::Cluster::run`].
/// All methods are blocking; the SPMD contract (see crate docs) guarantees
/// progress.
pub struct Comm {
    rank: usize,
    world_size: usize,
    /// `senders[dst]` sends to rank `dst`.
    senders: Vec<Sender<Payload>>,
    /// `receivers[src]` receives from rank `src`.
    receivers: Vec<Receiver<Payload>>,
    /// Shared failure-detection state (dead ranks, poison, steps).
    state: Arc<ClusterState>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        world_size: usize,
        senders: Vec<Sender<Payload>>,
        receivers: Vec<Receiver<Payload>>,
        state: Arc<ClusterState>,
    ) -> Comm {
        Comm {
            rank,
            world_size,
            senders,
            receivers,
            state,
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks in the cluster.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// True once any rank has failed (or a watchdog fired) and the cluster
    /// is unwinding. Long-running compute loops should check this to bail
    /// out promptly instead of producing work no peer will consume.
    pub fn poisoned(&self) -> bool {
        self.state.is_poisoned()
    }

    /// Record this rank's current training step for failure attribution:
    /// [`crate::RankFailure::step`] reports the failing rank's last value.
    pub fn set_step(&self, step: u64) {
        self.state.steps[self.rank].store(step, Ordering::SeqCst);
    }

    /// The watchdog deadline blocking receives wait before giving up.
    pub fn deadline(&self) -> Duration {
        self.state.deadline
    }

    // ---- Point-to-point -------------------------------------------------

    /// Raw channel send: no trace edge. The collective internals use this
    /// so their message traffic shows up only as the collective record,
    /// not as a storm of p2p edges.
    fn send_raw(&self, dst: usize, payload: Payload) -> Result<()> {
        if self.state.is_dead(dst) {
            return Err(CommError::PeerDead { peer: dst });
        }
        self.senders[dst].send(payload).map_err(|_| {
            if self.state.is_dead(dst) {
                CommError::PeerDead { peer: dst }
            } else {
                CommError::Disconnected { peer: dst }
            }
        })
    }

    /// Raw channel receive: no trace edge (see [`Comm::send_raw`]).
    ///
    /// Blocking, but watched: the wait is sliced into short ticks so the
    /// rank notices poison promptly, and gives up with a typed error after
    /// the cluster deadline — [`CommError::PeerDead`] when the peer (or any
    /// rank, once poisoned) is known dead, [`CommError::Timeout`] when the
    /// peer is alive but stuck. A timeout poisons the cluster so every
    /// other blocked rank unwinds too: no collective outlives the deadline.
    fn recv_raw(&self, src: usize) -> Result<Payload> {
        let deadline = self.state.deadline;
        let tick = (deadline / 16).clamp(Duration::from_millis(1), Duration::from_millis(50));
        let start = Instant::now();
        loop {
            if self.state.is_dead(src) {
                return Err(CommError::PeerDead { peer: src });
            }
            if self.state.is_poisoned() {
                let peer = self.state.first_dead().unwrap_or(src);
                return Err(CommError::PeerDead { peer });
            }
            match self.receivers[src].recv_timeout(tick) {
                Ok(p) => return Ok(p),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(if self.state.is_dead(src) {
                        CommError::PeerDead { peer: src }
                    } else {
                        CommError::Disconnected { peer: src }
                    });
                }
                Err(RecvTimeoutError::Timeout) => {
                    let waited = start.elapsed();
                    if waited >= deadline {
                        self.state.poison();
                        return Err(CommError::Timeout {
                            peer: src,
                            waited_ms: waited.as_millis() as u64,
                        });
                    }
                }
            }
        }
    }

    /// Send a payload to `dst`. Sending to self is allowed (buffered).
    /// Records a trace send edge (pipeline activations and control traffic).
    pub fn send(&self, dst: usize, payload: Payload) -> Result<()> {
        trace::edge(true, dst, payload.approx_bytes());
        self.send_raw(dst, payload)
    }

    /// Receive the next payload from `src` (blocking, FIFO per pair).
    /// Records a trace recv edge on arrival.
    pub fn recv(&self, src: usize) -> Result<Payload> {
        let payload = self.recv_raw(src)?;
        trace::edge(false, src, payload.approx_bytes());
        Ok(payload)
    }

    /// Send a tensor to `dst`.
    pub fn send_tensor(&self, dst: usize, t: &Tensor) -> Result<()> {
        self.send(dst, Payload::Tensor(t.clone()))
    }

    /// Receive a tensor from `src`.
    pub fn recv_tensor(&self, src: usize) -> Result<Tensor> {
        expect_payload!(self.recv(src)?, Tensor, "tensor")
    }

    /// Open a collective trace record without paying for the group label
    /// when tracing is off.
    fn trace_collective(
        &self,
        op: &'static str,
        group: &Group,
        bytes: u64,
    ) -> trace::CollectiveSpan<'static> {
        if trace::enabled() {
            trace::collective(op, &group.label(), bytes)
        } else {
            trace::collective(op, "", 0)
        }
    }

    // ---- Collectives ----------------------------------------------------

    fn member_index(&self, group: &Group) -> Result<usize> {
        group
            .index_of(self.rank)
            .ok_or(CommError::NotAMember { rank: self.rank })
    }

    /// Gather every member's payload to the leader (in member order), apply
    /// `reduce`, and broadcast the result back. The deterministic backbone
    /// of every collective below.
    ///
    /// Records one collective trace event per member under `op`: *enter* is
    /// the call, *ready* is when the rank stops waiting on its peers (the
    /// leader: last contribution received; others: result arrived), *exit*
    /// is the return.
    fn leader_reduce<F>(
        &self,
        op: &'static str,
        group: &Group,
        payload: Payload,
        reduce: F,
    ) -> Result<Payload>
    where
        F: FnOnce(Vec<Payload>) -> Result<Payload>,
    {
        self.member_index(group)?;
        let mut span = self.trace_collective(op, group, payload.approx_bytes());
        let leader = group.leader();
        if self.rank == leader {
            let mut contributions = Vec::with_capacity(group.size());
            for &m in group.members() {
                if m == self.rank {
                    contributions.push(payload.clone());
                } else {
                    contributions.push(self.recv_raw(m)?);
                }
            }
            span.ready();
            let result = reduce(contributions)?;
            for &m in group.members() {
                if m != self.rank {
                    self.send_raw(m, result.clone())?;
                }
            }
            Ok(result)
        } else {
            self.send_raw(leader, payload)?;
            let result = self.recv_raw(leader)?;
            span.ready();
            Ok(result)
        }
    }

    /// Barrier over a group.
    pub fn barrier(&self, group: &Group) -> Result<()> {
        self.leader_reduce("barrier", group, Payload::U64(0), |_| Ok(Payload::U64(0)))?;
        Ok(())
    }

    /// Broadcast `payload` from `root` to all members; every member returns
    /// the root's payload.
    pub fn broadcast(&self, group: &Group, root: usize, payload: Payload) -> Result<Payload> {
        self.member_index(group)?;
        if !group.contains(root) {
            return Err(CommError::InvalidGroup(format!(
                "broadcast root {root} not in group"
            )));
        }
        let mut span = self.trace_collective("broadcast", group, payload.approx_bytes());
        if self.rank == root {
            span.ready(); // the root never waits on peers
            for &m in group.members() {
                if m != self.rank {
                    self.send_raw(m, payload.clone())?;
                }
            }
            Ok(payload)
        } else {
            let result = self.recv_raw(root)?;
            span.ready();
            Ok(result)
        }
    }

    /// All-gather: every member contributes a payload and receives the full
    /// member-ordered list.
    pub fn all_gather(&self, group: &Group, payload: Payload) -> Result<Vec<Payload>> {
        self.member_index(group)?;
        let mut span = self.trace_collective("all_gather", group, payload.approx_bytes());
        let leader = group.leader();
        if self.rank == leader {
            let mut all = Vec::with_capacity(group.size());
            for &m in group.members() {
                if m == self.rank {
                    all.push(payload.clone());
                } else {
                    all.push(self.recv_raw(m)?);
                }
            }
            span.ready();
            for &m in group.members() {
                if m != self.rank {
                    for p in &all {
                        self.send_raw(m, p.clone())?;
                    }
                }
            }
            Ok(all)
        } else {
            self.send_raw(leader, payload)?;
            let mut all = Vec::with_capacity(group.size());
            for i in 0..group.size() {
                all.push(self.recv_raw(leader)?);
                if i == 0 {
                    // The leader has everything once it starts streaming;
                    // the rest of the loop is transfer, not peer wait.
                    span.ready();
                }
            }
            Ok(all)
        }
    }

    /// All-gather tensors.
    pub fn all_gather_tensors(&self, group: &Group, t: &Tensor) -> Result<Vec<Tensor>> {
        self.all_gather(group, Payload::Tensor(t.clone()))?
            .into_iter()
            .map(|p| expect_payload!(p, Tensor, "tensor"))
            .collect()
    }

    /// Deterministic all-reduce (sum) of tensors with f64 accumulation in
    /// member order. All members receive the identical result.
    pub fn all_reduce_sum(&self, group: &Group, t: &Tensor) -> Result<Tensor> {
        self.all_reduce_sum_named("all_reduce", group, t)
    }

    /// [`Comm::all_reduce_sum`] recorded under a caller-chosen trace op, so
    /// derived collectives (reduce-scatter) attribute to their own name.
    fn all_reduce_sum_named(&self, op: &'static str, group: &Group, t: &Tensor) -> Result<Tensor> {
        let out = self.leader_reduce(op, group, Payload::Tensor(t.clone()), |contribs| {
            let mut tensors = Vec::with_capacity(contribs.len());
            for c in contribs {
                tensors.push(expect_payload!(c, Tensor, "tensor")?);
            }
            let shape = tensors[0].shape().clone();
            let mut acc = vec![0.0f64; shape.num_elements()];
            for t in &tensors {
                if t.shape() != &shape {
                    return Err(CommError::InvalidGroup(format!(
                        "all_reduce shape mismatch: {} vs {}",
                        t.shape(),
                        shape
                    )));
                }
                for (a, v) in acc.iter_mut().zip(t.as_slice()) {
                    *a += f64::from(*v);
                }
            }
            let data: Vec<f32> = acc.into_iter().map(|v| v as f32).collect();
            // Shape is preserved, so from_vec cannot fail.
            Ok(Payload::Tensor(
                Tensor::from_vec(data, shape).expect("shape preserved"),
            ))
        })?;
        expect_payload!(out, Tensor, "tensor")
    }

    /// Deterministic all-reduce (sum) of f64 vectors in member order.
    pub fn all_reduce_sum_f64(&self, group: &Group, v: &[f64]) -> Result<Vec<f64>> {
        let out = self.leader_reduce(
            "all_reduce_f64",
            group,
            Payload::F64(v.to_vec()),
            |contribs| {
                let mut acc: Option<Vec<f64>> = None;
                for c in contribs {
                    let vec = expect_payload!(c, F64, "f64")?;
                    match &mut acc {
                        None => acc = Some(vec),
                        Some(a) => {
                            if a.len() != vec.len() {
                                return Err(CommError::InvalidGroup(format!(
                                    "all_reduce_f64 length mismatch: {} vs {}",
                                    a.len(),
                                    vec.len()
                                )));
                            }
                            for (x, y) in a.iter_mut().zip(vec) {
                                *x += y;
                            }
                        }
                    }
                }
                Ok(Payload::F64(acc.expect("group is non-empty")))
            },
        )?;
        expect_payload!(out, F64, "f64")
    }

    /// Deterministic sum of scalars across the group.
    pub fn all_reduce_scalar(&self, group: &Group, v: f64) -> Result<f64> {
        Ok(self.all_reduce_sum_f64(group, &[v])?[0])
    }

    /// Reduce-scatter over the flattened tensor: the full sum is computed
    /// deterministically, and member `i` receives chunk `i` of the result
    /// (the ZeRO-2 gradient-partitioning primitive). The flattened length
    /// must be divisible by the group size.
    pub fn reduce_scatter_sum(&self, group: &Group, t: &Tensor) -> Result<Tensor> {
        let summed = self.all_reduce_sum_named("reduce_scatter", group, t)?;
        let n = summed.num_elements();
        let parts = group.size();
        if n % parts != 0 {
            return Err(CommError::InvalidGroup(format!(
                "reduce_scatter: {n} elements not divisible by {parts} members"
            )));
        }
        let idx = self.member_index(group)?;
        let chunk = n / parts;
        let flat = summed.flatten();
        flat.narrow(0, idx * chunk, chunk)
            .map_err(|e| CommError::InvalidGroup(e.to_string()))
    }

    /// All-to-all: member `i` provides one payload per member; member `j`
    /// receives the list of payloads destined to it, in member order.
    /// The sequence-parallel (Ulysses) attention primitive.
    pub fn all_to_all(&self, group: &Group, outgoing: Vec<Payload>) -> Result<Vec<Payload>> {
        let my_idx = self.member_index(group)?;
        if outgoing.len() != group.size() {
            return Err(CommError::InvalidGroup(format!(
                "all_to_all: {} payloads for group of {}",
                outgoing.len(),
                group.size()
            )));
        }
        let bytes = outgoing.iter().map(Payload::approx_bytes).sum();
        let mut span = self.trace_collective("all_to_all", group, bytes);
        // Send phase: deliver to each peer (self-delivery kept local).
        let mut mine: Vec<Option<Payload>> = (0..group.size()).map(|_| None).collect();
        for (j, payload) in outgoing.into_iter().enumerate() {
            let dst = group.members()[j];
            if dst == self.rank {
                mine[my_idx] = Some(payload);
            } else {
                self.send_raw(dst, payload)?;
            }
        }
        // Receive phase, in member order for determinism.
        let mut first = true;
        for (i, &src) in group.members().iter().enumerate() {
            if src != self.rank {
                mine[i] = Some(self.recv_raw(src)?);
                if first {
                    // Peers have arrived once the first incoming payload
                    // lands; the remainder is transfer.
                    span.ready();
                    first = false;
                }
            }
        }
        Ok(mine.into_iter().map(|p| p.expect("filled above")).collect())
    }

    /// Gather tensors to `root` (member order); non-roots return `None`.
    pub fn gather_tensors(
        &self,
        group: &Group,
        root: usize,
        t: &Tensor,
    ) -> Result<Option<Vec<Tensor>>> {
        self.member_index(group)?;
        let mut span = self.trace_collective("gather", group, 4 * t.num_elements() as u64);
        if self.rank == root {
            let mut all = Vec::with_capacity(group.size());
            for &m in group.members() {
                if m == self.rank {
                    all.push(t.clone());
                } else {
                    all.push(expect_payload!(self.recv_raw(m)?, Tensor, "tensor")?);
                }
            }
            span.ready();
            Ok(Some(all))
        } else {
            self.send_raw(root, Payload::Tensor(t.clone()))?;
            span.ready(); // fire-and-forget: a non-root never waits
            Ok(None)
        }
    }

    /// Scatter equal flat chunks of a rank-1 tensor from `root`; member `i`
    /// receives chunk `i`. Non-root members pass any tensor (ignored).
    pub fn scatter_chunks(&self, group: &Group, root: usize, t: &Tensor) -> Result<Tensor> {
        let idx = self.member_index(group)?;
        let mut span = self.trace_collective("scatter", group, 4 * t.num_elements() as u64);
        if self.rank == root {
            span.ready(); // the root never waits on peers
            let n = t.num_elements();
            let parts = group.size();
            if !n.is_multiple_of(parts) {
                return Err(CommError::InvalidGroup(format!(
                    "scatter: {n} elements not divisible by {parts} members"
                )));
            }
            let chunk = n / parts;
            let flat = t.flatten();
            let mut my_chunk = None;
            for (i, &m) in group.members().iter().enumerate() {
                let piece = flat
                    .narrow(0, i * chunk, chunk)
                    .map_err(|e| CommError::InvalidGroup(e.to_string()))?;
                if m == self.rank {
                    my_chunk = Some(piece);
                } else {
                    self.send_raw(m, Payload::Tensor(piece))?;
                }
            }
            // The root is always a member, so its chunk was filled; `idx`
            // proves membership.
            let _ = idx;
            Ok(my_chunk.expect("root is a member"))
        } else {
            let result = expect_payload!(self.recv_raw(root)?, Tensor, "tensor")?;
            span.ready();
            Ok(result)
        }
    }
}
