//! Property and stress tests for the deterministic collectives: results
//! must be independent of thread scheduling and identical across members.

use proptest::prelude::*;
use ucp_collectives::{Cluster, Group};
use ucp_tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_reduce_equals_sequential_sum(
        world in 1usize..6,
        len in 1usize..32,
        seed in 0u64..1000,
    ) {
        let inputs: Vec<Vec<f32>> = (0..world)
            .map(|r| {
                (0..len)
                    .map(|i| ((seed as usize + r * 31 + i * 7) % 13) as f32 - 6.0)
                    .collect()
            })
            .collect();
        let expected: Vec<f32> = (0..len)
            .map(|i| {
                let mut acc = 0.0f64;
                for row in &inputs {
                    acc += f64::from(row[i]);
                }
                acc as f32
            })
            .collect();
        let inputs_ref = &inputs;
        let out = Cluster::run(world, move |comm| {
            let g = Group::world(comm.world_size());
            let t = Tensor::from_vec(inputs_ref[comm.rank()].clone(), [len]).unwrap();
            comm.all_reduce_sum(&g, &t).unwrap()
        });
        for t in &out {
            prop_assert_eq!(t.as_slice(), &expected[..]);
        }
    }

    #[test]
    fn reduce_scatter_tiles_the_all_reduce(
        world in 1usize..5,
        per in 1usize..8,
    ) {
        let len = world * per;
        let out = Cluster::run(world, move |comm| {
            let g = Group::world(comm.world_size());
            let t = Tensor::from_vec(
                (0..len).map(|i| (i + comm.rank()) as f32).collect(),
                [len],
            )
            .unwrap();
            let full = comm.all_reduce_sum(&g, &t).unwrap();
            let chunk = comm.reduce_scatter_sum(&g, &t).unwrap();
            (full, chunk)
        });
        for (rank, (full, chunk)) in out.iter().enumerate() {
            let expect = &full.as_slice()[rank * per..(rank + 1) * per];
            prop_assert_eq!(chunk.as_slice(), expect);
        }
    }
}

#[test]
fn all_reduce_is_schedule_independent() {
    // Run the identical program many times; deterministic reduction means
    // bitwise-identical results regardless of thread interleaving.
    let reference = Cluster::run(4, |comm| {
        let g = Group::world(4);
        let t = Tensor::full([64], 0.1 + comm.rank() as f32 * 1e-3);
        comm.all_reduce_sum(&g, &t).unwrap()
    });
    for _ in 0..20 {
        let again = Cluster::run(4, |comm| {
            let g = Group::world(4);
            let t = Tensor::full([64], 0.1 + comm.rank() as f32 * 1e-3);
            comm.all_reduce_sum(&g, &t).unwrap()
        });
        for (a, b) in reference.iter().zip(&again) {
            assert!(a.bitwise_eq(b), "schedule-dependent reduction");
        }
    }
}

#[test]
fn concurrent_disjoint_groups_do_not_interfere() {
    // 8 ranks split into 4 pair-groups, all reducing simultaneously with
    // different payload sizes per pair.
    let out = Cluster::run(8, |comm| {
        let pair = comm.rank() / 2;
        let g = Group::new(vec![pair * 2, pair * 2 + 1]).unwrap();
        let len = pair + 1;
        let t = Tensor::full([len], comm.rank() as f32);
        let r = comm.all_reduce_sum(&g, &t).unwrap();
        (len, r.as_slice()[0])
    });
    for pair in 0..4 {
        let expect = (pair * 2 + pair * 2 + 1) as f32;
        assert_eq!(out[pair * 2], (pair + 1, expect));
        assert_eq!(out[pair * 2 + 1], (pair + 1, expect));
    }
}

#[test]
fn pipeline_chain_with_tp_groups() {
    // Emulate the trainer's communication pattern: TP all-reduce inside a
    // stage, point-to-point between stages, repeated.
    let out = Cluster::run(8, |comm| {
        // 2 TP × 2 PP × 2 DP grid, tp fastest.
        let rank = comm.rank();
        let tp = rank % 2;
        let pp = (rank / 2) % 2;
        let tp_group = Group::new(vec![rank - tp, rank - tp + 1]).unwrap();
        let mut acc = 0.0f32;
        for step in 0..5 {
            let t = Tensor::full([4], (step + rank) as f32);
            let reduced = comm.all_reduce_sum(&tp_group, &t).unwrap();
            if pp == 0 {
                comm.send_tensor(rank + 2, &reduced).unwrap();
            } else {
                let from_prev = comm.recv_tensor(rank - 2).unwrap();
                acc += from_prev.as_slice()[0];
            }
        }
        acc
    });
    // Last stage ranks accumulated sums from their tp pair of stage 0.
    for rank in [2usize, 3, 6, 7] {
        assert!(out[rank] > 0.0);
    }
    for rank in [0usize, 1, 4, 5] {
        assert_eq!(out[rank], 0.0);
    }
}

#[test]
fn large_world_smoke() {
    // 32 ranks: the Fig. 9 scale (BLOOM tp2·pp6·dp2 is 24 ranks).
    let out = Cluster::run(32, |comm| {
        let g = Group::world(32);
        comm.all_reduce_scalar(&g, 1.0).unwrap()
    });
    assert!(out.iter().all(|v| *v == 32.0));
}
