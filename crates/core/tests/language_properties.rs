//! Property tests for the UCP language's name-glob matcher.

use proptest::prelude::*;
use ucp_core::language::glob_match;

/// Strategy: dotted names from a small alphabet.
fn name() -> impl Strategy<Value = String> {
    prop::collection::vec("[abc]{1,3}", 1..4).prop_map(|segs| segs.join("."))
}

proptest! {
    #[test]
    fn exact_globs_match_only_themselves(a in name(), b in name()) {
        prop_assert!(glob_match(&a, &a));
        prop_assert_eq!(glob_match(&a, &b), a == b);
    }

    #[test]
    fn double_star_matches_everything(n in name()) {
        prop_assert!(glob_match("**", &n));
        // `**.last` requires a dot before the last segment, so it matches
        // exactly the multi-segment names ending in that segment.
        let with_suffix = format!("**.{}", n.rsplit('.').next().unwrap());
        prop_assert_eq!(glob_match(&with_suffix, &n), n.contains('.'));
    }

    #[test]
    fn star_never_crosses_dots(prefix in "[abc]{1,3}", middle in "[abc]{1,3}", suffix in "[abc]{1,3}") {
        let name = format!("{prefix}.{middle}.{suffix}");
        // `prefix.*.suffix` matches the 3-segment name...
        let mid_glob = format!("{prefix}.*.{suffix}");
        let matched_mid = glob_match(&mid_glob, &name);
        prop_assert!(matched_mid, "{} should match {}", mid_glob, name);
        // ...but `prefix.*` must not match it (the star would need to
        // cross a dot).
        let short_glob = format!("{prefix}.*");
        let matched_short = glob_match(&short_glob, &name);
        prop_assert!(!matched_short, "{} must not match {}", short_glob, name);
    }

    #[test]
    fn replacing_any_segment_with_star_still_matches(n in name(), idx in 0usize..4) {
        let segs: Vec<&str> = n.split('.').collect();
        let idx = idx % segs.len();
        let glob: Vec<&str> = segs
            .iter()
            .enumerate()
            .map(|(i, s)| if i == idx { "*" } else { *s })
            .collect();
        prop_assert!(glob_match(&glob.join("."), &n));
    }

    #[test]
    fn empty_never_matches_nonempty(n in name()) {
        prop_assert!(!glob_match("", &n));
        prop_assert!(!glob_match(&n, ""));
    }
}
