//! Small shared utilities for the parallel phases.

use crate::Result;

/// Run `f(i)` for every index in `0..n` on up to `workers` threads,
/// collecting results in index order. Errors propagate (first error wins).
///
/// This is the execution backbone of the paper's parallel `Extract` (over
/// checkpoint files), parallel `Union` (over individual parameters), and
/// parallel `Load` (over atoms).
pub fn par_map<T, F>(n: usize, workers: usize, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    let workers = workers.max(1).min(n.max(1));
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<T>>> = (0..n).map(|_| None).collect();
    let slots_ptr = parking_lot::Mutex::new(&mut slots);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                slots_ptr.lock()[i] = Some(r);
            });
        }
    })
    .expect("par_map scope");
    slots
        .into_iter()
        .map(|s| s.expect("all indices processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UcpError;

    #[test]
    fn preserves_order() {
        let out = par_map(100, 7, |i| Ok(i * 3)).unwrap();
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_matches() {
        let a = par_map(10, 1, Ok).unwrap();
        let b = par_map(10, 4, Ok).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn propagates_errors() {
        let err = par_map(10, 3, |i| {
            if i == 5 {
                Err(UcpError::Inconsistent("boom".into()))
            } else {
                Ok(i)
            }
        });
        assert!(err.is_err());
    }

    #[test]
    fn zero_items() {
        let out: Vec<usize> = par_map(0, 4, |_| unreachable!()).unwrap();
        assert!(out.is_empty());
    }
}
