//! The UCP specification language (§3.2): declarative rules mapping
//! parameter names to patterns.
//!
//! A [`UcpSpec`] is an ordered rule list; the first rule whose name glob
//! matches a parameter decides its pattern. Globs use `*` to match within a
//! dotted name segment and `**` to match across segments, so
//! `layers.*.attention.dense.weight` covers every layer while
//! `embedding.**` covers the whole embedding subtree.
//!
//! Specs can be hand-written through [`UcpSpecBuilder`] — the "in-the-box"
//! extension point the paper describes for onboarding new parallelism
//! patterns — or derived automatically from a model's parameter inventory
//! with [`UcpSpec::from_model`].

use serde::{Deserialize, Serialize};
use ucp_model::{param_specs, ModelConfig};

use crate::pattern::ParamPattern;
use crate::{Result, UcpError};

/// One `glob → pattern` rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Name glob (see module docs for the syntax).
    pub glob: String,
    /// Pattern assigned to matching parameters.
    pub pattern: ParamPattern,
}

/// An ordered set of pattern rules.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UcpSpec {
    rules: Vec<Rule>,
}

/// Fluent builder for [`UcpSpec`].
#[derive(Debug, Default)]
pub struct UcpSpecBuilder {
    rules: Vec<Rule>,
}

impl UcpSpecBuilder {
    /// Start an empty spec.
    pub fn new() -> UcpSpecBuilder {
        UcpSpecBuilder::default()
    }

    /// Append a rule; earlier rules take precedence.
    pub fn rule(mut self, glob: impl Into<String>, pattern: ParamPattern) -> UcpSpecBuilder {
        self.rules.push(Rule {
            glob: glob.into(),
            pattern,
        });
        self
    }

    /// Finish the spec.
    pub fn build(self) -> UcpSpec {
        UcpSpec { rules: self.rules }
    }
}

impl UcpSpec {
    /// Derive the spec for a model trained at TP degree `tp`.
    ///
    /// `averaged` lists replicated parameters whose replicas were updated
    /// independently (they get `params_to_average`).
    pub fn from_model(cfg: &ModelConfig, tp: usize, averaged: &[String]) -> UcpSpec {
        let rules = param_specs(cfg)
            .into_iter()
            .map(|spec| Rule {
                pattern: ParamPattern::from_partition(
                    &spec.partition,
                    tp,
                    averaged.iter().any(|a| a == &spec.name),
                ),
                glob: spec.name,
            })
            .collect();
        UcpSpec { rules }
    }

    /// The rules, in precedence order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Serialize the spec to JSON — the textual form of the UCP language,
    /// so new parallelism patterns can be described in a file and loaded
    /// without recompiling.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(UcpError::Json)
    }

    /// Parse a spec from its JSON form.
    pub fn from_json(json: &str) -> Result<UcpSpec> {
        serde_json::from_str(json).map_err(UcpError::Json)
    }

    /// Pattern for a parameter name, if any rule matches.
    ///
    /// This is the `PatternMatch` primitive of the paper's Algorithm 1.
    pub fn pattern_of(&self, name: &str) -> Option<&ParamPattern> {
        self.rules
            .iter()
            .find(|r| glob_match(&r.glob, name))
            .map(|r| &r.pattern)
    }
}

/// Match a dotted-name glob: `*` matches within a segment (no dots), `**`
/// matches anything including dots. Matching is anchored at both ends.
pub fn glob_match(glob: &str, name: &str) -> bool {
    fn inner(g: &[u8], n: &[u8]) -> bool {
        if g.is_empty() {
            return n.is_empty();
        }
        if g.starts_with(b"**") {
            // Try consuming 0..=len(n) characters.
            let rest = &g[2..];
            (0..=n.len()).any(|k| inner(rest, &n[k..]))
        } else if g[0] == b'*' {
            let rest = &g[1..];
            // Consume 0..k non-dot characters.
            let mut k = 0;
            loop {
                if inner(rest, &n[k..]) {
                    return true;
                }
                if k >= n.len() || n[k] == b'.' {
                    return false;
                }
                k += 1;
            }
        } else {
            !n.is_empty() && g[0] == n[0] && inner(&g[1..], &n[1..])
        }
    }
    inner(glob.as_bytes(), name.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::FragmentSpec;

    #[test]
    fn glob_star_stays_within_segment() {
        assert!(glob_match(
            "layers.*.attention.dense.weight",
            "layers.7.attention.dense.weight"
        ));
        assert!(!glob_match(
            "layers.*.weight",
            "layers.7.attention.dense.weight"
        ));
        assert!(glob_match("layers.*", "layers.12"));
        assert!(!glob_match("layers.*", "layers.1.x"));
    }

    #[test]
    fn glob_double_star_crosses_segments() {
        assert!(glob_match(
            "embedding.**",
            "embedding.word_embeddings.weight"
        ));
        assert!(glob_match("**.bias", "layers.0.mlp.dense_h_to_4h.bias"));
        assert!(glob_match("**", "anything.at.all"));
        assert!(!glob_match("**.bias", "layers.0.mlp.weight"));
    }

    #[test]
    fn exact_names_match_themselves() {
        assert!(glob_match("lm_head.weight", "lm_head.weight"));
        assert!(!glob_match("lm_head.weight", "lm_head.weigh"));
        assert!(!glob_match("lm_head.weight", "lm_head.weightx"));
    }

    #[test]
    fn first_matching_rule_wins() {
        let spec = UcpSpecBuilder::new()
            .rule("layers.0.attention.dense.weight", ParamPattern::Replicated)
            .rule(
                "layers.*.attention.dense.weight",
                ParamPattern::Fragment(FragmentSpec::Dim { dim: 1 }),
            )
            .build();
        assert_eq!(
            spec.pattern_of("layers.0.attention.dense.weight"),
            Some(&ParamPattern::Replicated)
        );
        assert_eq!(
            spec.pattern_of("layers.3.attention.dense.weight"),
            Some(&ParamPattern::Fragment(FragmentSpec::Dim { dim: 1 }))
        );
        assert_eq!(spec.pattern_of("unmatched"), None);
    }

    #[test]
    fn derived_spec_covers_every_parameter() {
        let cfg = ModelConfig::llama_tiny();
        let spec = UcpSpec::from_model(&cfg, 2, &[]);
        for p in param_specs(&cfg) {
            assert!(
                spec.pattern_of(&p.name).is_some(),
                "no pattern for {}",
                p.name
            );
        }
        // Spot-check the interesting patterns.
        assert_eq!(
            spec.pattern_of("layers.0.attention.query_key_value.weight"),
            Some(&ParamPattern::Fragment(FragmentSpec::Grouped {
                dim: 0,
                sections: vec![32, 16, 16]
            }))
        );
        assert_eq!(
            spec.pattern_of("layers.0.input_layernorm.weight"),
            Some(&ParamPattern::Replicated)
        );
    }

    #[test]
    fn derived_spec_honours_averaged_list() {
        let cfg = ModelConfig::gpt3_tiny();
        let spec = UcpSpec::from_model(&cfg, 2, &["layers.0.input_layernorm.weight".to_string()]);
        assert_eq!(
            spec.pattern_of("layers.0.input_layernorm.weight"),
            Some(&ParamPattern::ToAverage)
        );
        assert_eq!(
            spec.pattern_of("layers.1.input_layernorm.weight"),
            Some(&ParamPattern::Replicated)
        );
    }

    #[test]
    fn moe_spec_gets_3d_fragments() {
        let cfg = ModelConfig::moe_tiny();
        let spec = UcpSpec::from_model(&cfg, 2, &[]);
        assert_eq!(
            spec.pattern_of("layers.0.moe.experts.dense_4h_to_h.weight"),
            Some(&ParamPattern::Fragment(FragmentSpec::Dim { dim: 2 }))
        );
        assert_eq!(
            spec.pattern_of("layers.0.moe.router.weight"),
            Some(&ParamPattern::Replicated)
        );
    }

    #[test]
    fn spec_json_roundtrip() {
        let cfg = ModelConfig::moe_tiny();
        let spec = UcpSpec::from_model(&cfg, 2, &[]);
        let json = spec.to_json().unwrap();
        let back = UcpSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        // The textual form names the paper's patterns.
        assert!(json.contains("Fragment"));
        assert!(json.contains("Replicated"));
    }
}
