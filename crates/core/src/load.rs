//! Target-side operations: `GenUcpMetadata` and `Load` (paper Table 2).
//!
//! Given a universal checkpoint and an arbitrary *Target* parallelism
//! configuration, [`gen_ucp_metadata`] computes, per rank, the new
//! partition metadata — which slice of which atom lands where in the
//! rank's flat ZeRO chunk, with alignment padding re-introduced — and
//! [`load_with_plan`] executes the reads.
//!
//! The default *ranged* load path reads only the bytes a rank needs: each
//! entry's shard is translated into element runs of the flattened atom
//! ([`Partition::shard_segments`]), adjacent runs are coalesced, and the
//! runs are fetched through verified section-range reads
//! ([`ucp_storage::ContainerIndex::read_section_range`]) into a
//! per-session [`AtomCache`] shared across ranks — DP replicas of a
//! (tp, pp) slice hit the cache instead of re-reading the same bytes.
//! `LoadOptions { ranged: false }` (CLI `--no-ranged-load`) falls back to
//! reading whole atom files.

use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ucp_model::{param_specs, ModelConfig, Partition, ShardSegment};
use ucp_parallel::{FlatFragment, FlatLayout, ParallelConfig, RankCoord};
use ucp_storage::layout::{self, AtomFile};
use ucp_storage::{Container, Device};
use ucp_tensor::{Shape, Tensor};

use crate::atom_cache::AtomCache;
use crate::manifest::UcpManifest;
use crate::util::par_map;
use crate::{Result, UcpError};

/// Default ZeRO alignment quantum (elements), matching the trainer.
pub const DEFAULT_ALIGNMENT: usize = 8;

/// One parameter's load instructions for one rank.
#[derive(Debug, Clone)]
pub struct LoadEntry {
    /// Atom (parameter) name, shared with the rank's `model_params`.
    pub name: Arc<str>,
    /// Consolidated shape of the atom.
    pub full_shape: Shape,
    /// How the target's TP degree slices the atom.
    pub partition: Partition,
    /// Pieces of this parameter that land in this rank's ZeRO chunk
    /// (empty when another DP rank owns all of it).
    pub fragments: Vec<FlatFragment>,
}

/// The complete load plan for one target rank — the output of
/// `GenUcpMetadata`.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Target strategy.
    pub target: ParallelConfig,
    /// This rank's coordinate.
    pub coord: RankCoord,
    /// Flat layout of this rank's (tp, pp) slice at the target DP degree,
    /// shared (not cloned) into the loaded [`RankState`].
    pub layout: Arc<FlatLayout>,
    /// Per-parameter instructions, in flattening order.
    pub entries: Vec<LoadEntry>,
}

impl LoadPlan {
    /// Number of atoms this rank must read (those with fragments, plus all
    /// owned params for the model copy).
    pub fn atoms_touched(&self) -> usize {
        self.entries.len()
    }
}

/// A target rank's reconstructed training state.
#[derive(Debug, Clone)]
pub struct RankState {
    /// Flat layout of the rank's (tp, pp) slice.
    pub layout: Arc<FlatLayout>,
    /// This rank's fp32 master chunk.
    pub fp32: Vec<f32>,
    /// This rank's Adam first-moment chunk.
    pub exp_avg: Vec<f32>,
    /// This rank's Adam second-moment chunk.
    pub exp_avg_sq: Vec<f32>,
    /// fp32 parameter shards of the whole (tp, pp) slice, in flattening
    /// order (the trainer quantizes these into its bf16/fp16 model copy).
    pub model_params: Vec<(Arc<str>, Tensor)>,
}

/// How a load executes its reads.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Atom reads fan out over this many threads.
    pub workers: usize,
    /// Bandwidth-throttled device the reads go through (unlimited by
    /// default).
    pub device: Device,
    /// `true` (default): fetch only the block-aligned byte ranges the
    /// rank's shard touches. `false`: read whole atom files (the
    /// pre-range-read behavior, kept for comparison and as an escape
    /// hatch).
    pub ranged: bool,
}

impl Default for LoadOptions {
    fn default() -> LoadOptions {
        LoadOptions {
            workers: 1,
            device: Device::unlimited(),
            ranged: true,
        }
    }
}

impl LoadOptions {
    /// Options with a worker count.
    pub fn with_workers(workers: usize) -> LoadOptions {
        LoadOptions {
            workers,
            ..LoadOptions::default()
        }
    }
}

/// One open universal checkpoint plus the atom cache its loads share.
///
/// Load every target rank through the same session and ranks that need
/// the same atom ranges (all DP replicas of a (tp, pp) slice do) fetch
/// the bytes once.
pub struct LoadSession {
    universal: PathBuf,
    manifest: UcpManifest,
    opts: LoadOptions,
    cache: Arc<AtomCache>,
}

impl LoadSession {
    /// Open the universal checkpoint for `step` under `base`.
    pub fn open(base: &Path, step: u64, opts: LoadOptions) -> Result<LoadSession> {
        let universal = layout::universal_dir(base, step);
        let manifest = UcpManifest::load(&universal)?;
        Ok(LoadSession {
            universal,
            manifest,
            opts,
            cache: Arc::new(AtomCache::new()),
        })
    }

    /// The checkpoint's manifest.
    pub fn manifest(&self) -> &UcpManifest {
        &self.manifest
    }

    /// `GenUcpMetadata` + `Load` for one rank, against the shared cache.
    pub fn load_rank(
        &self,
        target: &ParallelConfig,
        rank: usize,
        alignment: usize,
    ) -> Result<RankState> {
        let plan = gen_ucp_metadata(&self.manifest, target, rank, alignment)?;
        execute_plan(&self.universal, &plan, &self.opts, &self.cache)
    }
}

/// Compute the load plan for `rank` under `target` (the `GenUcpMetadata`
/// operation). Pure metadata: no atom data is read.
pub fn gen_ucp_metadata(
    manifest: &UcpManifest,
    target: &ParallelConfig,
    rank: usize,
    alignment: usize,
) -> Result<LoadPlan> {
    validate_target(&manifest.model, target)?;
    let coord = target.coord(rank);
    let specs = param_specs(&manifest.model);
    let blocks = target.stage_blocks(coord.pp, manifest.model.num_layers);

    // Owned parameters of this (tp, pp) slice, in deterministic name order
    // (the trainer's ParamStore order).
    let mut owned: Vec<(&ucp_model::ParamSpec, Shape)> = specs
        .iter()
        .filter(|s| match s.role {
            ucp_model::LayerRole::Embedding => coord.pp == 0,
            ucp_model::LayerRole::Head => coord.pp == target.pp - 1,
            ucp_model::LayerRole::Block(i) => blocks.contains(&i),
            ucp_model::LayerRole::SharedEmbedding => coord.pp == 0 || coord.pp == target.pp - 1,
        })
        .map(|s| {
            let shard_shape = s.partition.shard_shape(&s.shape, target.tp);
            (s, shard_shape)
        })
        .collect();
    owned.sort_by(|a, b| a.0.name.cmp(&b.0.name));

    let layout = Arc::new(FlatLayout::build(
        &owned
            .iter()
            .map(|(s, shape)| (s.name.clone(), shape.clone()))
            .collect::<Vec<_>>(),
        alignment,
        target.dp,
    ));

    let mut entries = Vec::with_capacity(owned.len());
    for ((spec, _), slot) in owned.iter().zip(&layout.slots) {
        debug_assert_eq!(spec.name, slot.name);
        let atom = manifest.atom(&spec.name).ok_or_else(|| {
            UcpError::Inconsistent(format!("manifest has no atom for {}", spec.name))
        })?;
        if atom.shape != spec.shape {
            return Err(UcpError::Inconsistent(format!(
                "atom {} shape {} does not match model spec {}",
                spec.name, atom.shape, spec.shape
            )));
        }
        let fragments = layout
            .fragments_of(slot)
            .into_iter()
            .filter(|f| f.dp_rank == coord.dp)
            .collect();
        entries.push(LoadEntry {
            name: Arc::from(spec.name.as_str()),
            full_shape: spec.shape.clone(),
            partition: spec.partition.clone(),
            fragments,
        });
    }

    Ok(LoadPlan {
        target: *target,
        coord,
        layout,
        entries,
    })
}

fn validate_target(model: &ModelConfig, target: &ParallelConfig) -> Result<()> {
    model.validate(target.tp).map_err(UcpError::Inconsistent)?;
    target
        .validate(model.num_layers, model.max_seq_len)
        .map_err(UcpError::Inconsistent)?;
    Ok(())
}

fn read_atom(universal_dir: &Path, name: &str, file: AtomFile, device: &Device) -> Result<Tensor> {
    let path = layout::atom_path(universal_dir, name, file);
    let t = ucp_telemetry::enabled().then(std::time::Instant::now);
    if t.is_some() {
        ucp_telemetry::count("storage/open", 1);
    }
    let f = std::fs::File::open(&path)?;
    let mut r = device.reader(std::io::BufReader::new(f));
    let c = Container::read_from(&mut r)?;
    if let Some(t) = t {
        ucp_telemetry::observe(
            "load/atom_read_ns",
            t.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        );
        if let Ok(meta) = std::fs::metadata(&path) {
            ucp_telemetry::count("load/bytes_read", meta.len());
            ucp_telemetry::count("load/bytes_needed", meta.len());
        }
    }
    c.get(file.state_key())
        .cloned()
        .ok_or_else(|| UcpError::Inconsistent(format!("atom {name} missing {}", file.state_key())))
}

/// Execute a load plan against a universal checkpoint directory (the `Load`
/// operation). Returns this rank's reconstructed state.
pub fn load_with_plan(universal_dir: &Path, plan: &LoadPlan) -> Result<RankState> {
    load_with_plan_workers(universal_dir, plan, 1)
}

/// [`load_with_plan`] with the atom reads fanned out over `workers`
/// threads — the loading-efficiency improvement the paper lists as future
/// work. Produces identical state to the serial path (asserted by tests);
/// the ablation bench measures the speedup.
pub fn load_with_plan_workers(
    universal_dir: &Path,
    plan: &LoadPlan,
    workers: usize,
) -> Result<RankState> {
    load_with_plan_opts(universal_dir, plan, &LoadOptions::with_workers(workers))
}

/// [`load_with_plan_workers`] reading every atom through a bandwidth-
/// throttled [`Device`] — the CLI and benches use this to emulate
/// fixed-bandwidth storage; with an unlimited device it is the identity.
pub fn load_with_plan_device(
    universal_dir: &Path,
    plan: &LoadPlan,
    workers: usize,
    device: &Device,
) -> Result<RankState> {
    load_with_plan_opts(
        universal_dir,
        plan,
        &LoadOptions {
            workers,
            device: *device,
            ranged: true,
        },
    )
}

/// [`load_with_plan`] with full control over workers, device, and the
/// ranged/full read strategy. Uses a fresh single-rank atom cache; share
/// reads across ranks with [`LoadSession`] instead.
pub fn load_with_plan_opts(
    universal_dir: &Path,
    plan: &LoadPlan,
    opts: &LoadOptions,
) -> Result<RankState> {
    execute_plan(universal_dir, plan, opts, &AtomCache::new())
}

/// Per-entry phase-1 output: the fp32 shard of the whole parameter plus
/// whatever optimizer-moment data this rank's fragments need.
enum MomentData {
    /// Full-read path: sharded moment tensors, scattered by fragment.
    Full(Tensor, Tensor),
    /// Ranged path: `(chunk_offset, values)` runs, copied directly.
    Runs(Vec<(usize, Vec<f32>)>, Vec<(usize, Vec<f32>)>),
}

fn execute_plan(
    universal_dir: &Path,
    plan: &LoadPlan,
    opts: &LoadOptions,
    cache: &AtomCache,
) -> Result<RankState> {
    let _load_span = ucp_telemetry::trace::span(ucp_telemetry::TraceCat::Load, "load");
    let t_total = ucp_telemetry::enabled().then(std::time::Instant::now);
    let chunk = plan.layout.chunk;
    let mut fp32 = vec![0.0f32; chunk];
    let mut exp_avg = vec![0.0f32; chunk];
    let mut exp_avg_sq = vec![0.0f32; chunk];

    // Phase 1 (parallel): read and slice the atoms each entry needs.
    // Per-entry busy time accumulates into `load/worker_busy_ns`;
    // utilization over the read phase is busy / (span × workers).
    let pieces = par_map(plan.entries.len(), opts.workers, |i| {
        let _read_sp = ucp_telemetry::trace::span(ucp_telemetry::TraceCat::Load, "read_entry");
        let t_busy = ucp_telemetry::enabled().then(std::time::Instant::now);
        let entry = &plan.entries[i];
        let piece = if opts.ranged {
            read_entry_ranged(universal_dir, plan, entry, opts, cache)?
        } else {
            read_entry_full(universal_dir, plan, entry, opts)?
        };
        if let Some(t) = t_busy {
            ucp_telemetry::count(
                "load/worker_busy_ns",
                t.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            );
        }
        Ok(piece)
    })?;
    if let Some(t) = t_total {
        ucp_telemetry::global().record_span("load/read", t.elapsed());
    }

    // Phase 2 (serial): scatter fragments into the flat chunks.
    let _scatter_span = ucp_telemetry::trace::span(ucp_telemetry::TraceCat::Load, "scatter");
    let t_scatter = ucp_telemetry::enabled().then(std::time::Instant::now);
    let mut model_params = Vec::with_capacity(plan.entries.len());
    for (entry, (shard_fp32, moments)) in plan.entries.iter().zip(pieces) {
        match moments {
            Some(MomentData::Full(m, v)) => {
                scatter(&mut fp32, shard_fp32.as_slice(), &entry.fragments);
                scatter(&mut exp_avg, m.flatten().as_slice(), &entry.fragments);
                scatter(&mut exp_avg_sq, v.flatten().as_slice(), &entry.fragments);
            }
            Some(MomentData::Runs(m_runs, v_runs)) => {
                scatter(&mut fp32, shard_fp32.as_slice(), &entry.fragments);
                for (off, vals) in m_runs {
                    exp_avg[off..off + vals.len()].copy_from_slice(&vals);
                }
                for (off, vals) in v_runs {
                    exp_avg_sq[off..off + vals.len()].copy_from_slice(&vals);
                }
            }
            None => {}
        }
        model_params.push((entry.name.clone(), shard_fp32));
    }
    if let Some(t) = t_scatter {
        ucp_telemetry::global().record_span("load/scatter", t.elapsed());
    }
    if let Some(t) = t_total {
        ucp_telemetry::global().record_span("load/total", t.elapsed());
    }

    Ok(RankState {
        layout: Arc::clone(&plan.layout),
        fp32,
        exp_avg,
        exp_avg_sq,
        model_params,
    })
}

/// Full-read strategy: open each atom container and decode all of it, then
/// slice out this rank's TP shard in memory.
fn read_entry_full(
    universal_dir: &Path,
    plan: &LoadPlan,
    entry: &LoadEntry,
    opts: &LoadOptions,
) -> Result<(Tensor, Option<MomentData>)> {
    // Model copy always needs the fp32 shard of every owned parameter.
    let atom_fp32 = read_atom(universal_dir, &entry.name, AtomFile::Fp32, &opts.device)?;
    if atom_fp32.shape() != &entry.full_shape {
        return Err(UcpError::Inconsistent(format!(
            "atom {} has shape {}, expected {}",
            entry.name,
            atom_fp32.shape(),
            entry.full_shape
        )));
    }
    let shard_fp32 = entry
        .partition
        .shard(&atom_fp32, plan.target.tp, plan.coord.tp);
    // Optimizer moments are only read when this rank's chunk intersects
    // the parameter.
    let moments = if entry.fragments.is_empty() {
        None
    } else {
        let mut out = Vec::with_capacity(2);
        for file in [AtomFile::ExpAvg, AtomFile::ExpAvgSq] {
            let atom = read_atom(universal_dir, &entry.name, file, &opts.device)?;
            out.push(entry.partition.shard(&atom, plan.target.tp, plan.coord.tp));
        }
        Some(MomentData::Full(out.remove(0), out.remove(0)))
    };
    Ok((shard_fp32, moments))
}

/// Ranged strategy: fetch only the element runs the shard and fragments
/// touch, through the shared atom cache.
fn read_entry_ranged(
    universal_dir: &Path,
    plan: &LoadPlan,
    entry: &LoadEntry,
    opts: &LoadOptions,
    cache: &AtomCache,
) -> Result<(Tensor, Option<MomentData>)> {
    let segments = entry
        .partition
        .shard_segments(&entry.full_shape, plan.target.tp, plan.coord.tp);
    let shard_shape = entry
        .partition
        .shard_shape(&entry.full_shape, plan.target.tp);

    // The model copy needs the whole fp32 shard: one range per segment
    // with an on-disk source; padding segments stay zero.
    let fp32_ranges: Vec<Range<usize>> = segments
        .iter()
        .filter_map(|s| s.src_offset.map(|o| o..o + s.len))
        .collect();
    let (dtype, parts) = cache.fetch(
        universal_dir,
        &entry.name,
        AtomFile::Fp32,
        &entry.full_shape,
        &fp32_ranges,
        &opts.device,
    )?;
    let mut shard_flat = vec![0.0f32; shard_shape.num_elements()];
    let mut part = parts.into_iter();
    for seg in &segments {
        if seg.src_offset.is_some() {
            let vals = part.next().expect("one part per sourced segment");
            shard_flat[seg.shard_offset..seg.shard_offset + seg.len].copy_from_slice(&vals);
        }
    }
    let shard_fp32 = Tensor::from_vec(shard_flat, shard_shape)?.cast(dtype);

    // Moments: only the exact fragment intersections, as sparse runs.
    let moments = if entry.fragments.is_empty() {
        None
    } else {
        let runs = fragment_runs(&segments, &entry.fragments);
        let src: Vec<Range<usize>> = runs.iter().map(|(_, r)| r.clone()).collect();
        let offs: Vec<usize> = runs.iter().map(|(o, _)| *o).collect();
        let (_, m) = cache.fetch(
            universal_dir,
            &entry.name,
            AtomFile::ExpAvg,
            &entry.full_shape,
            &src,
            &opts.device,
        )?;
        let (_, v) = cache.fetch(
            universal_dir,
            &entry.name,
            AtomFile::ExpAvgSq,
            &entry.full_shape,
            &src,
            &opts.device,
        )?;
        Some(MomentData::Runs(
            offs.iter().copied().zip(m).collect(),
            offs.into_iter().zip(v).collect(),
        ))
    };
    Ok((shard_fp32, moments))
}

/// Intersect this rank's ZeRO fragments (shard-space) with the shard's
/// source segments (atom-space): each overlap with an on-disk source
/// becomes a `(chunk_offset, atom element range)` run. Padding overlaps
/// are dropped — the chunk buffers start zeroed, which is exactly what the
/// full-read path scatters there.
fn fragment_runs(
    segments: &[ShardSegment],
    fragments: &[FlatFragment],
) -> Vec<(usize, Range<usize>)> {
    let mut runs = Vec::new();
    for f in fragments {
        let fstart = f.param_offset;
        let fend = f.param_offset + f.len;
        for seg in segments {
            let lo = fstart.max(seg.shard_offset);
            let hi = fend.min(seg.shard_offset + seg.len);
            if lo >= hi {
                continue;
            }
            if let Some(src) = seg.src_offset {
                let s = src + (lo - seg.shard_offset);
                runs.push((f.chunk_offset + (lo - fstart), s..s + (hi - lo)));
            }
        }
    }
    runs
}

/// Copy `fragments` of the flattened shard into the chunk buffer.
pub(crate) fn scatter(chunk: &mut [f32], shard_flat: &[f32], fragments: &[FlatFragment]) {
    for f in fragments {
        chunk[f.chunk_offset..f.chunk_offset + f.len]
            .copy_from_slice(&shard_flat[f.param_offset..f.param_offset + f.len]);
    }
}

/// Convenience: `GenUcpMetadata` + `Load` for one rank, reading the
/// manifest from disk.
pub fn load_universal(
    base: &Path,
    step: u64,
    target: &ParallelConfig,
    rank: usize,
    alignment: usize,
) -> Result<(UcpManifest, RankState)> {
    let session = LoadSession::open(base, step, LoadOptions::default())?;
    let state = session.load_rank(target, rank, alignment)?;
    Ok((session.manifest.clone(), state))
}
