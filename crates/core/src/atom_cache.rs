//! A load-session cache of atom-checkpoint contents, keyed by
//! `(parameter, atom file)` and filled by verified section-range reads.
//!
//! The ranged load path asks for exactly the element runs a rank's shard
//! needs. This cache turns those requests into block-aligned disk reads
//! ([`ucp_storage::ContainerIndex::read_section_range`]) and remembers the
//! decoded values, so when several ranks of one load session need the same
//! atom ranges — every DP replica of a (tp, pp) slice reads the same fp32
//! shard — the bytes are fetched once and served from memory afterwards.
//!
//! Bookkeeping (telemetry counters, see `docs` in DESIGN.md):
//!
//! - `load/bytes_needed` — exact bytes of every requested range, hits
//!   included. The denominator of the read-amplification ratio.
//! - `load/bytes_read` — bytes actually fetched from disk (block-aligned
//!   payload spans plus their CRC table entries). The numerator.
//! - `load/cache_hits` / `load/cache_misses` — requests served entirely
//!   from memory vs. requests that touched disk.
//! - `load/cache_hit_bytes` — exact bytes of the fully-cached requests.

use std::collections::{BTreeMap, HashMap};
use std::ops::Range;
use std::path::Path;
use std::sync::{Arc, Mutex};

use ucp_storage::layout::{self, AtomFile};
use ucp_storage::{ContainerIndex, Device, RangeScratch};
use ucp_tensor::{DType, Shape};

use crate::util::par_map;
use crate::{Result, UcpError};

/// Tick the file-open counter (`storage/open`): cache-miss fetches open
/// one handle per pool worker, so the counter makes handle churn visible.
fn count_open() {
    if ucp_telemetry::enabled() {
        ucp_telemetry::count("storage/open", 1);
    }
}

/// What fetching one coalesced gap produced.
enum GapOutcome {
    /// Decoded values, plus the bytes the fetch cost on disk (payload
    /// span + CRC table entries).
    Fetched(Vec<f32>, u64),
    /// Block-granular checksum mismatch — not fatal: the orchestrator
    /// falls back to one whole-section read verified against the
    /// independent whole-payload CRC.
    Mismatch(String),
}

/// Decoded, disjoint, non-adjacent element intervals of one atom section,
/// plus the container index needed to fetch more of it.
struct AtomEntry {
    /// Lazily-built index of the atom's container file.
    index: Option<ContainerIndex>,
    /// Cached intervals: start element → decoded values. Every boundary is
    /// CRC-block-aligned (or clamped to the section end), so uncovered
    /// gaps are block-aligned too and fetches never re-read cached bytes.
    intervals: BTreeMap<usize, Vec<f32>>,
}

/// Atom entries keyed by (parameter name, atom file kind), each behind
/// its own lock so concurrent workers fetching different atoms never
/// serialize on each other.
type EntryMap = HashMap<(String, AtomFile), Arc<Mutex<AtomEntry>>>;

/// Shared cache of atom contents for one load session. Cheap to create;
/// share one across the ranks of a `load_universal` fan-out via
/// [`crate::load::LoadSession`].
#[derive(Default)]
pub struct AtomCache {
    entries: Mutex<EntryMap>,
}

impl AtomCache {
    /// An empty cache.
    pub fn new() -> AtomCache {
        AtomCache::default()
    }

    /// Fetch `ranges` (element ranges of the flattened atom) of `file` for
    /// parameter `name`, reading through `device` whatever is not cached
    /// yet. Returns the section dtype and one decoded vector per requested
    /// range, in order. `expected_shape` is checked against the section
    /// header before anything is decoded.
    pub fn fetch(
        &self,
        universal_dir: &Path,
        name: &str,
        file: AtomFile,
        expected_shape: &Shape,
        ranges: &[Range<usize>],
        device: &Device,
    ) -> Result<(DType, Vec<Vec<f32>>)> {
        let entry = self.entry(name, file);
        let mut entry = entry.lock().expect("atom cache entry poisoned");
        let path = layout::atom_path(universal_dir, name, file);
        let key = file.state_key();

        if entry.index.is_none() {
            count_open();
            let f = std::fs::File::open(&path)?;
            let mut r = device.reader(std::io::BufReader::new(f));
            entry.index = Some(ContainerIndex::read_from(&mut r)?);
        }
        let info = entry
            .index
            .as_ref()
            .expect("index populated above")
            .get(key)
            .ok_or_else(|| UcpError::Inconsistent(format!("atom {name} missing {key}")))?;
        if &info.shape != expected_shape {
            return Err(UcpError::Inconsistent(format!(
                "atom {name} has shape {}, expected {}",
                info.shape, expected_shape
            )));
        }
        let total = info.num_elements();
        let dtype = info.dtype;
        // Elements per CRC block; v1 sections have no block table, so the
        // whole section is the fetch unit (cached in full on first touch).
        let block_elems = if info.crc_block == 0 {
            total.max(1)
        } else {
            info.crc_block as usize / dtype.size_bytes()
        };
        let esize = dtype.size_bytes() as u64;

        // Plan: align each requested range outward to block boundaries and
        // subtract what the cache already holds, then coalesce the missing
        // pieces so adjacent/overlapping requests become one disk read.
        let mut needed_bytes = 0u64;
        let mut hits = 0u64;
        let mut hit_bytes = 0u64;
        let mut misses = 0u64;
        let mut missing: Vec<Range<usize>> = Vec::new();
        for r in ranges {
            if r.start >= r.end {
                continue;
            }
            if r.end > total {
                return Err(UcpError::Inconsistent(format!(
                    "atom {name} {key}: range {}..{} out of bounds for {total} elements",
                    r.start, r.end
                )));
            }
            needed_bytes += (r.end - r.start) as u64 * esize;
            let aligned = (r.start / block_elems * block_elems)
                ..r.end
                    .div_ceil(block_elems)
                    .saturating_mul(block_elems)
                    .min(total);
            let gaps = entry.uncovered(&aligned);
            if gaps.is_empty() {
                hits += 1;
                hit_bytes += (r.end - r.start) as u64 * esize;
            } else {
                misses += 1;
                missing.extend(gaps);
            }
        }
        missing.sort_by_key(|r| r.start);
        missing.dedup();
        let mut coalesced: Vec<Range<usize>> = Vec::new();
        for r in missing {
            match coalesced.last_mut() {
                Some(last) if r.start <= last.end => last.end = last.end.max(r.end),
                _ => coalesced.push(r),
            }
        }

        if !coalesced.is_empty() {
            let _sp = ucp_telemetry::trace::span(ucp_telemetry::TraceCat::Load, "atom_fetch");
            let payload_len = info.payload_len;

            // Fan the coalesced gaps out over the device's fetch pool.
            // Each worker holds one file handle and one scratch buffer for
            // its whole stripe of gaps; every gap is attempted regardless
            // of pool size, so decoded state and `load/bytes_read` are
            // identical from the serial path to any pool width.
            let pool = device.fetch_pool().min(coalesced.len()).max(1);
            let index = entry.index.as_ref().expect("index populated above");
            let info = index.get(key).expect("section checked above");
            let gaps = &coalesced;
            let stripes = par_map(pool, pool, |w| {
                count_open();
                let f = std::fs::File::open(&path)?;
                let mut r = device.reader(std::io::BufReader::new(f));
                let mut scratch = RangeScratch::default();
                let mut out = Vec::new();
                for (i, gap) in gaps.iter().enumerate().skip(w).step_by(pool) {
                    // Payload span plus the CRC table entries covering it.
                    let gap_bytes = info.range_read_bytes(gap)
                        + if info.crc_block == 0 {
                            4
                        } else {
                            4 * ((gap.end as u64 * esize).div_ceil(info.crc_block as u64)
                                - gap.start as u64 * esize / info.crc_block as u64)
                        };
                    match index.read_section_range_with(&mut r, key, gap.clone(), &mut scratch) {
                        Ok(tensor) => out.push((
                            i,
                            GapOutcome::Fetched(tensor.as_slice().to_vec(), gap_bytes),
                        )),
                        Err(ucp_storage::StorageError::ChecksumMismatch { what }) => {
                            out.push((i, GapOutcome::Mismatch(what)));
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                Ok(out)
            })?;
            let mut outcomes: Vec<Option<GapOutcome>> =
                (0..coalesced.len()).map(|_| None).collect();
            for (i, o) in stripes.into_iter().flatten() {
                outcomes[i] = Some(o);
            }
            let mut read_bytes: u64 = outcomes
                .iter()
                .map(|o| match o {
                    Some(GapOutcome::Fetched(_, b)) => *b,
                    _ => 0,
                })
                .sum();
            let mismatch = outcomes.iter().find_map(|o| match o {
                Some(GapOutcome::Mismatch(what)) => Some(what.clone()),
                _ => None,
            });
            if let Some(what) = mismatch {
                // Graceful degradation: a block-granular mismatch may mean
                // the *table* is damaged, not the data. Re-read the whole
                // section verified against its independent whole-payload
                // CRC; only if that fails too is the atom truly corrupt.
                eprintln!(
                    "warning: atom {name} {key}: ranged read failed \
                     ({what}); falling back to a whole-section read"
                );
                if ucp_telemetry::enabled() {
                    ucp_telemetry::count("load/ranged_fallback", 1);
                }
                count_open();
                let f = std::fs::File::open(&path)?;
                let mut r = device.reader(std::io::BufReader::new(f));
                let full = {
                    let index = entry.index.as_ref().expect("index populated above");
                    index.read_section_lenient(&mut r, key)?
                };
                read_bytes += payload_len + 4;
                entry.intervals.clear();
                entry.insert(0, full.as_slice().to_vec());
            } else {
                for (gap, o) in coalesced.iter().zip(outcomes) {
                    if let Some(GapOutcome::Fetched(vals, _)) = o {
                        entry.insert(gap.start, vals);
                    }
                }
            }
            if ucp_telemetry::enabled() {
                ucp_telemetry::count("load/bytes_read", read_bytes);
            }
        }
        if ucp_telemetry::enabled() {
            ucp_telemetry::count("load/bytes_needed", needed_bytes);
            ucp_telemetry::count("load/cache_hits", hits);
            ucp_telemetry::count("load/cache_misses", misses);
            ucp_telemetry::count("load/cache_hit_bytes", hit_bytes);
        }

        // Assemble the answers from cached intervals.
        let mut out = Vec::with_capacity(ranges.len());
        for r in ranges {
            out.push(entry.gather(r));
        }
        Ok((dtype, out))
    }

    fn entry(&self, name: &str, file: AtomFile) -> Arc<Mutex<AtomEntry>> {
        let mut map = self.entries.lock().expect("atom cache poisoned");
        map.entry((name.to_string(), file))
            .or_insert_with(|| {
                Arc::new(Mutex::new(AtomEntry {
                    index: None,
                    intervals: BTreeMap::new(),
                }))
            })
            .clone()
    }
}

impl AtomEntry {
    /// Sub-ranges of `r` not covered by any cached interval.
    fn uncovered(&self, r: &Range<usize>) -> Vec<Range<usize>> {
        let mut gaps = Vec::new();
        let mut cursor = r.start;
        for (&start, vals) in self.intervals.range(..r.end) {
            let end = start + vals.len();
            if end <= cursor {
                continue;
            }
            if start > cursor {
                gaps.push(cursor..start.min(r.end));
            }
            cursor = cursor.max(end);
            if cursor >= r.end {
                break;
            }
        }
        if cursor < r.end {
            gaps.push(cursor..r.end);
        }
        gaps
    }

    /// Insert a fetched interval, merging with adjacent cached neighbours
    /// so the map stays disjoint and non-adjacent.
    fn insert(&mut self, start: usize, mut vals: Vec<f32>) {
        let mut start = start;
        // Merge with a predecessor that touches our start.
        if let Some((&ps, pv)) = self.intervals.range(..=start).next_back() {
            if ps + pv.len() == start {
                let mut merged = self.intervals.remove(&ps).expect("present");
                merged.append(&mut vals);
                start = ps;
                vals = merged;
            }
        }
        // Merge with a successor that starts at our end.
        if let Some(mut next) = self.intervals.remove(&(start + vals.len())) {
            vals.append(&mut next);
        }
        self.intervals.insert(start, vals);
    }

    /// Copy `r` out of the cached intervals. Callers only gather ranges
    /// whose aligned cover was fetched above, so coverage is total.
    fn gather(&self, r: &Range<usize>) -> Vec<f32> {
        let n = r.end.saturating_sub(r.start);
        let mut out = vec![0.0f32; n];
        if n == 0 {
            return out;
        }
        for (&start, vals) in self.intervals.range(..r.end) {
            let end = start + vals.len();
            if end <= r.start {
                continue;
            }
            let lo = r.start.max(start);
            let hi = r.end.min(end);
            out[lo - r.start..hi - r.start].copy_from_slice(&vals[lo - start..hi - start]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_with(intervals: &[(usize, usize)]) -> AtomEntry {
        let mut e = AtomEntry {
            index: None,
            intervals: BTreeMap::new(),
        };
        for &(start, len) in intervals {
            e.intervals
                .insert(start, (start..start + len).map(|v| v as f32).collect());
        }
        e
    }

    #[test]
    fn uncovered_finds_gaps_between_intervals() {
        let e = entry_with(&[(10, 10), (30, 10)]);
        assert_eq!(e.uncovered(&(0..50)), vec![0..10, 20..30, 40..50]);
        assert_eq!(e.uncovered(&(12..18)), Vec::<Range<usize>>::new());
        assert_eq!(e.uncovered(&(15..35)), vec![20..30]);
        assert_eq!(e.uncovered(&(40..45)), vec![40..45]);
    }

    #[test]
    fn insert_merges_adjacent_intervals() {
        let mut e = entry_with(&[(0, 10), (20, 10)]);
        e.insert(10, (10..20).map(|v| v as f32).collect());
        assert_eq!(e.intervals.len(), 1);
        let vals = &e.intervals[&0];
        assert_eq!(vals.len(), 30);
        assert!(vals.iter().enumerate().all(|(i, v)| *v == i as f32));
    }

    #[test]
    fn gather_stitches_across_intervals() {
        let mut e = entry_with(&[(0, 10)]);
        e.insert(10, (10..25).map(|v| v as f32).collect());
        let got = e.gather(&(5..20));
        assert_eq!(got, (5..20).map(|v| v as f32).collect::<Vec<_>>());
    }
}
