//! Conversion of native distributed checkpoints into the universal format —
//! the paper's Algorithm 1.
//!
//! The workflow, per pipeline stage of the source configuration:
//!
//! 1. **Extract** (parallel over checkpoint files): read each (dp, tp, pp)
//!    optimizer-states file and slice its ZeRO chunk into per-parameter
//!    flat fragments (alignment padding dropped — `StripPadding`).
//! 2. **Union, phase 1** (flat): stitch each parameter's fragments across
//!    DP ranks back into the (tp, pp)-shard tensor.
//! 3. **Union, phase 2** (parallel over parameters): consolidate the TP
//!    shards according to each parameter's pattern — first copy for
//!    `replicated_params`, mean for `params_to_average`, sub-pattern-aware
//!    concatenation for `fragment_params`.
//! 4. Write one atom checkpoint per parameter (`fp32` / `exp_avg` /
//!    `exp_avg_sq` files, §3.1) plus the manifest.
//!
//! `ConvertOptions::spill_fragments` reproduces the paper's
//! memory-bounded variant where Extract persists fragment files to disk and
//! Union reads them back (Table 2 notes the memory/parallelism trade-off;
//! the ablation bench measures it).

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

use ucp_model::{param_specs, ParamSpec};
use ucp_storage::layout::AtomFile;
use ucp_storage::{layout, Container};
use ucp_tensor::Tensor;

use crate::checkpoint::{load_model_states, load_optim_states};
use crate::language::UcpSpec;
use crate::manifest::{AtomMeta, UcpManifest};
use crate::ops::{extract_flat, strip_padding, union_flat, union_tp, Fragment};
use crate::pattern::{FragmentSpec, ParamPattern};
use crate::util::par_map;
use crate::{Result, UcpError};

/// Options controlling the conversion.
#[derive(Debug, Clone)]
pub struct ConvertOptions {
    /// Worker threads for the parallel Extract and Union phases.
    pub workers: usize,
    /// Persist extracted fragments to disk between phases (memory-bounded
    /// mode) instead of holding them in memory.
    pub spill_fragments: bool,
    /// Verify that replicated-parameter copies are bitwise identical.
    pub verify_replicas: bool,
    /// Replace the automatically-derived pattern spec with a user-written
    /// one — the UCP-language extension point for new parallelism patterns
    /// (its rules must cover every parameter; unmatched names still fall
    /// back to the derived spec).
    pub spec_override: Option<crate::language::UcpSpec>,
}

impl Default for ConvertOptions {
    fn default() -> ConvertOptions {
        ConvertOptions {
            workers: 4,
            spill_fragments: false,
            verify_replicas: true,
            spec_override: None,
        }
    }
}

/// Timing and volume accounting of one conversion.
#[derive(Debug, Clone, Default)]
pub struct ConvertStats {
    /// Atom checkpoints written (one per parameter).
    pub atoms_written: usize,
    /// Total bytes of atom payloads written.
    pub bytes_written: u64,
    /// Wall time of the Extract phase (seconds).
    pub extract_secs: f64,
    /// Wall time of the Union + write phase (seconds).
    pub union_secs: f64,
}

/// Per-parameter consolidated state for one (tp, pp) slice: the three state
/// tensors, indexed `[fp32, exp_avg, exp_avg_sq]`.
type SliceStates = BTreeMap<String, [Tensor; 3]>;

/// Reassemble one (tp, pp) slice's per-parameter state tensors from its DP
/// optimizer chunks (Extract + flat Union).
fn assemble_slice(
    step_dir: &Path,
    dp_degree: usize,
    tp: usize,
    pp: usize,
    opts: &ConvertOptions,
    spill_dir: Option<&Path>,
) -> Result<SliceStates> {
    // Extract phase: parallel over the dp checkpoint files. Telemetry
    // spans use absolute paths ("convert/...") because this runs on
    // par_map worker threads, which have no parent span on their stack.
    let t_extract = ucp_telemetry::enabled().then(Instant::now);
    let extracted = par_map(dp_degree, opts.workers, |dp| {
        let _sp = ucp_telemetry::trace::span(ucp_telemetry::TraceCat::Convert, "extract");
        let (_, shard) = load_optim_states(step_dir, dp, tp, pp)?;
        let keys: [(&str, &[f32]); 3] = [
            ("fp32", &shard.fp32),
            ("exp_avg", &shard.exp_avg),
            ("exp_avg_sq", &shard.exp_avg_sq),
        ];
        let mut out: Vec<(String, usize, Fragment)> = Vec::new();
        for (ki, (_, chunk)) in keys.iter().enumerate() {
            for (name, frag) in extract_flat(&shard.layout, dp, chunk) {
                out.push((name, ki, frag));
            }
        }
        // Memory-bounded mode: persist fragments and return only their
        // identity; the union phase reads them back.
        if let Some(spill) = spill_dir {
            let mut spilled = Vec::with_capacity(out.len());
            for (name, ki, frag) in out {
                let path = spill.join(format!("{name}.tp{tp}.pp{pp}.k{ki}.dp{dp}.frag"));
                let mut c = Container::new(format!(r#"{{"param_offset": {}}}"#, frag.param_offset));
                let len = frag.data.len();
                c.push(
                    "frag",
                    Tensor::from_vec(frag.data, [len]).map_err(UcpError::Tensor)?,
                );
                ucp_telemetry::count("convert/spill_bytes", c.encoded_len() as u64);
                c.write_file(&path)?;
                // Keep only the identity; union reads the payload back.
                spilled.push((
                    name,
                    ki,
                    Fragment {
                        param_offset: frag.param_offset,
                        data: Vec::new(),
                    },
                ));
            }
            return Ok(spilled);
        }
        Ok(out)
    })?;
    if let Some(t) = t_extract {
        ucp_telemetry::global().record_span("convert/extract", t.elapsed());
        let fragments: usize = extracted.iter().map(Vec::len).sum();
        ucp_telemetry::count("convert/fragments", fragments as u64);
    }

    // Reload one header for the flat layout (headers are tiny).
    let flat_layout = load_optim_states(step_dir, 0, tp, pp)?.1.layout;

    let t_union = ucp_telemetry::enabled().then(Instant::now);
    let _union_span = ucp_telemetry::trace::span(ucp_telemetry::TraceCat::Convert, "union_flat");
    let mut grouped: BTreeMap<(String, usize), Vec<Fragment>> = BTreeMap::new();
    for (dp, per_file) in extracted.into_iter().enumerate() {
        for (name, ki, frag) in per_file {
            let frag = if let Some(spill) = spill_dir {
                // Read the spilled fragment back.
                let path = spill.join(format!("{name}.tp{tp}.pp{pp}.k{ki}.dp{dp}.frag"));
                let c = Container::read_file(&path)?;
                let data = c
                    .get("frag")
                    .ok_or_else(|| UcpError::Inconsistent("missing frag section".into()))?
                    .as_slice()
                    .to_vec();
                Fragment {
                    param_offset: frag.param_offset,
                    data,
                }
            } else {
                frag
            };
            grouped.entry((name, ki)).or_default().push(frag);
        }
    }

    // Flat union per (param, key).
    let mut states: SliceStates = BTreeMap::new();
    for slot in &flat_layout.slots {
        let mut tensors: Vec<Tensor> = Vec::with_capacity(3);
        for ki in 0..3 {
            let frags = grouped.remove(&(slot.name.clone(), ki)).ok_or_else(|| {
                UcpError::Inconsistent(format!("no fragments for {} key {ki}", slot.name))
            })?;
            let flat = union_flat(slot.len, &frags)?;
            tensors.push(Tensor::from_vec(flat, slot.shape.clone()).map_err(UcpError::Tensor)?);
        }
        let [a, b, c]: [Tensor; 3] = tensors.try_into().expect("three keys");
        states.insert(slot.name.clone(), [a, b, c]);
    }
    if let Some(t) = t_union {
        ucp_telemetry::global().record_span("convert/union_flat", t.elapsed());
    }
    Ok(states)
}

/// Convert the native distributed checkpoint at `base/global_step<step>`
/// into a universal checkpoint at `base/global_step<step>_universal`.
///
/// Returns the manifest and conversion statistics.
pub fn convert_to_universal(
    base: &Path,
    step: u64,
    opts: &ConvertOptions,
) -> Result<(UcpManifest, ConvertStats)> {
    let t_total = Instant::now();
    let _convert_span = ucp_telemetry::trace::span(ucp_telemetry::TraceCat::Convert, "convert");
    let step_dir = layout::step_dir(base, step);
    let universal = layout::universal_dir(base, step);
    std::fs::create_dir_all(&universal)?;
    let spill_dir = if opts.spill_fragments {
        let d = universal.join("_extract_tmp");
        std::fs::create_dir_all(&d)?;
        Some(d)
    } else {
        None
    };

    // Source metadata from the first model-states file.
    let (common, _) = load_model_states(&step_dir, 0, 0)?;
    let src = common.parallel;
    let derived = UcpSpec::from_model(&common.model, src.tp, &common.params_to_average);
    let all_specs = param_specs(&common.model);

    let mut stats = ConvertStats::default();
    let mut atoms: Vec<AtomMeta> = Vec::new();

    for pp in 0..src.pp {
        // Extract + flat union for every TP shard of this stage.
        let t0 = Instant::now();
        let slices = par_map(src.tp, opts.workers, |tp| {
            // ZeRO partitions over the combined dp × sp group (Ulysses
            // composes sequence parallelism into the ZeRO axis), so one
            // optimizer chunk exists per (dp, sp) replica.
            assemble_slice(
                &step_dir,
                src.dp * src.sp,
                tp,
                pp,
                opts,
                spill_dir.as_deref(),
            )
        })?;
        stats.extract_secs += t0.elapsed().as_secs_f64();

        // TP union + atom writes, parallel at individual-parameter level.
        let t1 = Instant::now();
        let names: Vec<String> = slices[0].keys().cloned().collect();
        let written = par_map(names.len(), opts.workers, |i| {
            let name = &names[i];
            // User rules take precedence; the derived spec is the fallback.
            let pattern = opts
                .spec_override
                .as_ref()
                .and_then(|s| s.pattern_of(name))
                .or_else(|| derived.pattern_of(name))
                .cloned()
                .ok_or_else(|| UcpError::Inconsistent(format!("no pattern rule matches {name}")))?;
            let spec_entry = find_param(&all_specs, name)?;
            // Per-pattern union work item (the format! only runs when
            // tracing is on).
            let _union_sp = ucp_telemetry::trace::enabled().then(|| {
                ucp_telemetry::trace::span(
                    ucp_telemetry::TraceCat::Convert,
                    &format!("union:{}", pattern.paper_name()),
                )
            });
            let mut metas = Vec::with_capacity(3);
            let mut bytes = 0u64;
            for (ki, file) in AtomFile::ALL.iter().enumerate() {
                let t_tp = ucp_telemetry::enabled().then(Instant::now);
                let shards: Vec<Tensor> = slices
                    .iter()
                    .map(|s| {
                        s.get(name).map(|t| t[ki].clone()).ok_or_else(|| {
                            UcpError::Inconsistent(format!("{name} missing in a TP slice"))
                        })
                    })
                    .collect::<Result<_>>()?;
                let mut atom = union_tp(&pattern, &shards, opts.verify_replicas)?;
                // Algorithm 1, lines 19-20: hasPadding → StripPadding. The
                // padded-dim sub-pattern carries alignment padding past the
                // union; strip it against the logical shape.
                if matches!(
                    pattern,
                    ParamPattern::Fragment(FragmentSpec::PaddedDim { .. })
                ) {
                    let _strip_sp = ucp_telemetry::trace::span(
                        ucp_telemetry::TraceCat::Convert,
                        "strip_padding",
                    );
                    atom = strip_padding(&atom, &spec_entry.shape)?;
                }
                if atom.shape() != &spec_entry.shape {
                    return Err(UcpError::Inconsistent(format!(
                        "atom {name}: consolidated shape {} != spec shape {}",
                        atom.shape(),
                        spec_entry.shape
                    )));
                }
                if let Some(t) = t_tp {
                    ucp_telemetry::global().record_span("convert/union_tp", t.elapsed());
                }
                // Shared with the born-universal save pipeline: both paths
                // commit atoms through the same writer, which is what keeps
                // their on-disk trees byte-identical.
                bytes += crate::assemble::write_atom_file(
                    &universal,
                    name,
                    &pattern,
                    *file,
                    atom,
                    "convert/atom_write",
                )?;
                if ki == 0 {
                    metas.push(AtomMeta {
                        name: name.clone(),
                        shape: spec_entry.shape.clone(),
                        pattern: pattern.clone(),
                    });
                }
            }
            Ok((metas, bytes))
        })?;
        stats.union_secs += t1.elapsed().as_secs_f64();
        for (metas, bytes) in written {
            stats.atoms_written += metas.len();
            stats.bytes_written += bytes;
            atoms.extend(metas);
        }
    }

    if let Some(spill) = &spill_dir {
        std::fs::remove_dir_all(spill).ok();
    }

    let manifest = crate::assemble::build_manifest(&common, atoms);
    // The manifest is written only after every atom is durable, and the
    // marker only after the manifest: a crash anywhere in between leaves
    // at worst an unreferenced universal dir, never a loadable half-
    // converted one.
    manifest.save(&universal)?;
    layout::write_latest_universal(base, step)?;
    ucp_storage::journal::append(
        base,
        &ucp_storage::JournalEvent::UniversalPublished { step },
    )?;
    if ucp_telemetry::enabled() {
        ucp_telemetry::count("convert/atoms_written", stats.atoms_written as u64);
        ucp_telemetry::count("convert/bytes_written", stats.bytes_written);
        ucp_telemetry::global().record_span("convert/total", t_total.elapsed());
    }
    Ok((manifest, stats))
}

fn find_param<'a>(specs: &'a [ParamSpec], name: &str) -> Result<&'a ParamSpec> {
    specs
        .iter()
        .find(|s| s.name == name)
        .ok_or_else(|| UcpError::Inconsistent(format!("unknown parameter {name}")))
}
