//! In-memory universal checkpoints: the consolidation and load path of
//! the RAM-resident hot checkpoint tier.
//!
//! A [`MemoryCheckpoint`] is a universal checkpoint that never touches
//! disk: per-parameter atom tensors plus a manifest, assembled from the
//! optimizer shards peers replicated into RAM ([`HotShard`]). Assembly
//! runs the exact same transformation operations as the on-disk convert
//! pass (`Extract` → flat `Union` → pattern-dispatched TP `Union` →
//! `StripPadding`), and loading runs the exact same `GenUcpMetadata` +
//! shard/scatter path as [`crate::load`] — so a rank resumed from peer
//! memory reconstructs bitwise-identical state to one resumed from the
//! converted disk checkpoint, under *any* target parallelism strategy.

use std::collections::BTreeMap;
use std::sync::Arc;

use ucp_model::param_specs;
use ucp_parallel::ParallelConfig;
use ucp_tensor::Tensor;

use crate::checkpoint::{CommonState, OptimShard};
use crate::language::UcpSpec;
use crate::load::{gen_ucp_metadata, scatter, RankState};
use crate::manifest::{AtomMeta, UcpManifest};
use crate::ops::{extract_flat, strip_padding, union_flat, union_tp, Fragment};
use crate::pattern::{FragmentSpec, ParamPattern};
use crate::{Result, UcpError};

/// One rank's contribution to the hot tier: the training state it would
/// persist at a save step, kept in (peer) memory instead.
#[derive(Debug, Clone, PartialEq)]
pub struct HotShard {
    /// Replicated run metadata (identical on every rank of a step).
    pub common: CommonState,
    /// Source TP coordinate of the shard.
    pub tp: usize,
    /// Source PP coordinate of the shard.
    pub pp: usize,
    /// The rank's flat ZeRO optimizer chunk (`shard.dp` is its index
    /// within the combined dp × sp ZeRO group).
    pub shard: OptimShard,
}

impl HotShard {
    /// Payload size of the three state chunks, in bytes (the dominant
    /// term of a replica's memory footprint).
    pub fn payload_bytes(&self) -> u64 {
        ((self.shard.fp32.len() + self.shard.exp_avg.len() + self.shard.exp_avg_sq.len()) * 4)
            as u64
    }
}

/// Per-parameter consolidated state for one (tp, pp) slice, indexed
/// `[fp32, exp_avg, exp_avg_sq]`.
type SliceStates = BTreeMap<String, [Tensor; 3]>;

/// A fully consolidated universal checkpoint held in memory.
#[derive(Debug, Clone)]
pub struct MemoryCheckpoint {
    manifest: UcpManifest,
    /// Atom tensors per parameter, indexed `[fp32, exp_avg, exp_avg_sq]`.
    atoms: BTreeMap<String, [Tensor; 3]>,
}

impl MemoryCheckpoint {
    /// Consolidate a complete set of hot shards — one per (tp, pp, zero)
    /// coordinate of the source strategy — into per-parameter atoms.
    ///
    /// This is Algorithm 1 with the file reads replaced by the in-memory
    /// shards: the tensors it produces are identical to what
    /// [`crate::convert::convert_to_universal`] would write for the same
    /// step, which is what makes hot recovery bitwise-equal to disk
    /// recovery.
    pub fn assemble(shards: Vec<HotShard>) -> Result<MemoryCheckpoint> {
        let first = shards
            .first()
            .ok_or_else(|| UcpError::Inconsistent("hot assemble: no shards".into()))?;
        let common = first.common.clone();
        let src = common.parallel;
        // ZeRO partitions over the combined dp × sp group, matching the
        // native checkpoint layout.
        let zero = src.dp * src.sp;

        // Index shards by coordinate, rejecting mixed steps, duplicates,
        // and out-of-range coordinates up front.
        let mut by_slice: BTreeMap<(usize, usize), BTreeMap<usize, OptimShard>> = BTreeMap::new();
        for s in shards {
            if s.common.iteration != common.iteration {
                return Err(UcpError::Inconsistent(format!(
                    "hot assemble: mixed steps {} and {}",
                    s.common.iteration, common.iteration
                )));
            }
            if s.tp >= src.tp || s.pp >= src.pp || s.shard.dp >= zero {
                return Err(UcpError::Inconsistent(format!(
                    "hot assemble: shard (tp {}, pp {}, zero {}) outside source {}",
                    s.tp,
                    s.pp,
                    s.shard.dp,
                    src.label()
                )));
            }
            let zi = s.shard.dp;
            if by_slice
                .entry((s.tp, s.pp))
                .or_default()
                .insert(zi, s.shard)
                .is_some()
            {
                return Err(UcpError::Inconsistent(format!(
                    "hot assemble: duplicate shard (tp {}, pp {}, zero {zi})",
                    s.tp, s.pp
                )));
            }
        }

        let derived = UcpSpec::from_model(&common.model, src.tp, &common.params_to_average);
        let all_specs = param_specs(&common.model);
        let mut metas: Vec<AtomMeta> = Vec::new();
        let mut atoms: BTreeMap<String, [Tensor; 3]> = BTreeMap::new();

        for pp in 0..src.pp {
            // Extract + flat union for every TP shard of this stage.
            let mut slices: Vec<SliceStates> = Vec::with_capacity(src.tp);
            for tp in 0..src.tp {
                let chunks = by_slice.remove(&(tp, pp)).ok_or_else(|| {
                    UcpError::Inconsistent(format!(
                        "hot assemble: no shards for (tp {tp}, pp {pp})"
                    ))
                })?;
                if chunks.len() != zero {
                    return Err(UcpError::Inconsistent(format!(
                        "hot assemble: (tp {tp}, pp {pp}) has {}/{zero} ZeRO chunks",
                        chunks.len()
                    )));
                }
                slices.push(assemble_slice(&chunks)?);
            }

            // TP union per parameter, exactly as the disk convert pass.
            let names: Vec<String> = slices[0].keys().cloned().collect();
            for name in &names {
                let pattern = derived.pattern_of(name).cloned().ok_or_else(|| {
                    UcpError::Inconsistent(format!("no pattern rule matches {name}"))
                })?;
                let spec_entry = all_specs
                    .iter()
                    .find(|s| &s.name == name)
                    .ok_or_else(|| UcpError::Inconsistent(format!("unknown parameter {name}")))?;
                let mut triple: Vec<Tensor> = Vec::with_capacity(3);
                for ki in 0..3 {
                    let tp_shards: Vec<Tensor> = slices
                        .iter()
                        .map(|s| {
                            s.get(name).map(|t| t[ki].clone()).ok_or_else(|| {
                                UcpError::Inconsistent(format!("{name} missing in a TP slice"))
                            })
                        })
                        .collect::<Result<_>>()?;
                    let mut atom = union_tp(&pattern, &tp_shards, true)?;
                    if matches!(
                        pattern,
                        ParamPattern::Fragment(FragmentSpec::PaddedDim { .. })
                    ) {
                        atom = strip_padding(&atom, &spec_entry.shape)?;
                    }
                    if atom.shape() != &spec_entry.shape {
                        return Err(UcpError::Inconsistent(format!(
                            "atom {name}: consolidated shape {} != spec shape {}",
                            atom.shape(),
                            spec_entry.shape
                        )));
                    }
                    triple.push(atom);
                }
                let triple: [Tensor; 3] = triple.try_into().expect("three state keys");
                atoms.insert(name.clone(), triple);
                metas.push(AtomMeta {
                    name: name.clone(),
                    shape: spec_entry.shape.clone(),
                    pattern,
                });
            }
        }

        let manifest = crate::assemble::build_manifest(&common, metas);
        Ok(MemoryCheckpoint { manifest, atoms })
    }

    /// The checkpoint's manifest.
    pub fn manifest(&self) -> &UcpManifest {
        &self.manifest
    }

    /// The step the checkpoint captures.
    pub fn step(&self) -> u64 {
        self.manifest.iteration
    }

    /// `GenUcpMetadata` + `Load` for one target rank, served from memory.
    /// Mirrors the disk load path's full-read strategy operation for
    /// operation, so the reconstructed state is bitwise-identical.
    pub fn load_rank(
        &self,
        target: &ParallelConfig,
        rank: usize,
        alignment: usize,
    ) -> Result<RankState> {
        let plan = gen_ucp_metadata(&self.manifest, target, rank, alignment)?;
        let chunk = plan.layout.chunk;
        let mut fp32 = vec![0.0f32; chunk];
        let mut exp_avg = vec![0.0f32; chunk];
        let mut exp_avg_sq = vec![0.0f32; chunk];
        let mut model_params = Vec::with_capacity(plan.entries.len());
        for entry in &plan.entries {
            let [atom_fp32, atom_m, atom_v] =
                self.atoms.get(entry.name.as_ref()).ok_or_else(|| {
                    UcpError::Inconsistent(format!("hot checkpoint has no atom for {}", entry.name))
                })?;
            if atom_fp32.shape() != &entry.full_shape {
                return Err(UcpError::Inconsistent(format!(
                    "atom {} has shape {}, expected {}",
                    entry.name,
                    atom_fp32.shape(),
                    entry.full_shape
                )));
            }
            let shard_fp32 = entry
                .partition
                .shard(atom_fp32, plan.target.tp, plan.coord.tp);
            if !entry.fragments.is_empty() {
                let m = entry.partition.shard(atom_m, plan.target.tp, plan.coord.tp);
                let v = entry.partition.shard(atom_v, plan.target.tp, plan.coord.tp);
                scatter(&mut fp32, shard_fp32.as_slice(), &entry.fragments);
                scatter(&mut exp_avg, m.flatten().as_slice(), &entry.fragments);
                scatter(&mut exp_avg_sq, v.flatten().as_slice(), &entry.fragments);
            }
            model_params.push((entry.name.clone(), shard_fp32));
        }
        Ok(RankState {
            layout: Arc::clone(&plan.layout),
            fp32,
            exp_avg,
            exp_avg_sq,
            model_params,
        })
    }
}

/// Reassemble one (tp, pp) slice's per-parameter state tensors from its
/// ZeRO chunks (Extract + flat Union, in memory).
fn assemble_slice(chunks: &BTreeMap<usize, OptimShard>) -> Result<SliceStates> {
    let layout = &chunks
        .values()
        .next()
        .expect("caller checked coverage")
        .layout;
    let mut grouped: BTreeMap<(String, usize), Vec<Fragment>> = BTreeMap::new();
    for (&zi, shard) in chunks {
        let keys: [&[f32]; 3] = [&shard.fp32, &shard.exp_avg, &shard.exp_avg_sq];
        for (ki, chunk) in keys.iter().enumerate() {
            for (name, frag) in extract_flat(&shard.layout, zi, chunk) {
                grouped.entry((name, ki)).or_default().push(frag);
            }
        }
    }
    let mut states: SliceStates = BTreeMap::new();
    for slot in &layout.slots {
        let mut tensors: Vec<Tensor> = Vec::with_capacity(3);
        for ki in 0..3 {
            let frags = grouped.remove(&(slot.name.clone(), ki)).ok_or_else(|| {
                UcpError::Inconsistent(format!("no fragments for {} key {ki}", slot.name))
            })?;
            let flat = union_flat(slot.len, &frags)?;
            tensors.push(Tensor::from_vec(flat, slot.shape.clone()).map_err(UcpError::Tensor)?);
        }
        let [a, b, c]: [Tensor; 3] = tensors.try_into().expect("three keys");
        states.insert(slot.name.clone(), [a, b, c]);
    }
    Ok(states)
}
