//! Parameter patterns (paper Table 1) and fragment sub-patterns (Fig. 5).

use serde::{Deserialize, Serialize};
use ucp_model::Partition;

/// How a parameter's fragments relate to GPU ranks in the source
/// checkpoint — the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamPattern {
    /// `unique_params`: uniquely associated with one rank (ZeRO-1/2 flat
    /// chunks within a DP group, PP-stage-owned tensors).
    Unique,
    /// `replicated_params`: identical copies on several ranks; any one copy
    /// is the consolidated value.
    Replicated,
    /// `fragment_params`: partitioned along some dimension(s); union is a
    /// sub-pattern-specific concatenation.
    Fragment(FragmentSpec),
    /// `params_to_average`: updated independently across ranks (e.g. under
    /// some sequence-parallel setups); union is the elementwise mean.
    ToAverage,
}

/// Sub-patterns of `fragment_params` carrying the shape/partition-dimension
/// information the paper's Fig. 5 describes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FragmentSpec {
    /// Evenly split along `dim` (row/column TP; `dim > 0` covers the 3-D
    /// MoE tensor `[experts, hidden_out, hidden_in]` split on `hidden_out`).
    Dim {
        /// Partitioned dimension.
        dim: usize,
    },
    /// `dim` is a concatenation of variable-size sections, each split
    /// evenly across ranks — the fused QKV of GQA (`[q, k, v]` sections of
    /// different sizes) and fused SwiGLU gate+up.
    Grouped {
        /// Partitioned dimension.
        dim: usize,
        /// Section extents along `dim`.
        sections: Vec<usize>,
    },
    /// Evenly split along `dim` after zero-padding to a multiple of
    /// `multiple × tp` (Megatron vocab alignment). Union concatenates the
    /// padded shards; the conversion then applies `StripPadding` against
    /// the logical shape (Algorithm 1's `hasPadding` branch).
    PaddedDim {
        /// Partitioned dimension.
        dim: usize,
        /// Alignment quantum.
        multiple: usize,
    },
    /// Fragments are ranges of the *flattened* parameter with explicit
    /// offsets — ZeRO-1/2/3 optimizer-state partitions, where a parameter
    /// straddles DP-rank chunk boundaries.
    Flat1D,
}

impl ParamPattern {
    /// Derive the checkpoint pattern from a model parameter's TP partition
    /// rule, given the TP degree of the source run.
    ///
    /// `average` forces `params_to_average` for replicated parameters whose
    /// replicas were updated independently (trainer-declared).
    pub fn from_partition(partition: &Partition, tp: usize, average: bool) -> ParamPattern {
        match partition {
            Partition::Replicated => {
                if average {
                    ParamPattern::ToAverage
                } else if tp > 1 {
                    ParamPattern::Replicated
                } else {
                    ParamPattern::Unique
                }
            }
            // A padded shard is a real fragment even at TP=1: the single
            // shard still carries alignment padding to strip.
            Partition::PaddedShard { dim, multiple } => {
                ParamPattern::Fragment(FragmentSpec::PaddedDim {
                    dim: *dim,
                    multiple: *multiple,
                })
            }
            _ if tp == 1 => ParamPattern::Unique,
            Partition::Shard { dim } => ParamPattern::Fragment(FragmentSpec::Dim { dim: *dim }),
            Partition::Grouped { dim, sections } => ParamPattern::Fragment(FragmentSpec::Grouped {
                dim: *dim,
                sections: sections.clone(),
            }),
        }
    }

    /// The paper's name for this pattern (reports, manifests).
    pub fn paper_name(&self) -> &'static str {
        match self {
            ParamPattern::Unique => "unique_params",
            ParamPattern::Replicated => "replicated_params",
            ParamPattern::Fragment(_) => "fragment_params",
            ParamPattern::ToAverage => "params_to_average",
        }
    }
}

impl std::fmt::Display for ParamPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamPattern::Fragment(FragmentSpec::Dim { dim }) => {
                write!(f, "fragment_params(dim={dim})")
            }
            ParamPattern::Fragment(FragmentSpec::Grouped { dim, sections }) => {
                write!(f, "fragment_params(dim={dim}, sections={sections:?})")
            }
            ParamPattern::Fragment(FragmentSpec::PaddedDim { dim, multiple }) => {
                write!(f, "fragment_params(dim={dim}, pad_multiple={multiple})")
            }
            ParamPattern::Fragment(FragmentSpec::Flat1D) => write!(f, "fragment_params(flat)"),
            other => write!(f, "{}", other.paper_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_from_partitions() {
        let rep = Partition::Replicated;
        assert_eq!(
            ParamPattern::from_partition(&rep, 2, false),
            ParamPattern::Replicated
        );
        assert_eq!(
            ParamPattern::from_partition(&rep, 1, false),
            ParamPattern::Unique,
            "with one rank nothing is replicated"
        );
        assert_eq!(
            ParamPattern::from_partition(&rep, 2, true),
            ParamPattern::ToAverage
        );

        let shard = Partition::Shard { dim: 1 };
        assert_eq!(
            ParamPattern::from_partition(&shard, 2, false),
            ParamPattern::Fragment(FragmentSpec::Dim { dim: 1 })
        );
        assert_eq!(
            ParamPattern::from_partition(&shard, 1, false),
            ParamPattern::Unique,
            "TP=1 shard is the whole tensor"
        );

        let grouped = Partition::Grouped {
            dim: 0,
            sections: vec![32, 16, 16],
        };
        assert_eq!(
            ParamPattern::from_partition(&grouped, 2, false),
            ParamPattern::Fragment(FragmentSpec::Grouped {
                dim: 0,
                sections: vec![32, 16, 16]
            })
        );
    }

    #[test]
    fn paper_names_match_table_1() {
        assert_eq!(ParamPattern::Unique.paper_name(), "unique_params");
        assert_eq!(ParamPattern::Replicated.paper_name(), "replicated_params");
        assert_eq!(
            ParamPattern::Fragment(FragmentSpec::Flat1D).paper_name(),
            "fragment_params"
        );
        assert_eq!(ParamPattern::ToAverage.paper_name(), "params_to_average");
    }

    #[test]
    fn display_includes_subpattern_info() {
        let p = ParamPattern::Fragment(FragmentSpec::Grouped {
            dim: 0,
            sections: vec![8, 4, 4],
        });
        assert!(p.to_string().contains("sections=[8, 4, 4]"));
    }

    #[test]
    fn serde_roundtrip() {
        let p = ParamPattern::Fragment(FragmentSpec::Dim { dim: 2 });
        let json = serde_json::to_string(&p).unwrap();
        let back: ParamPattern = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
