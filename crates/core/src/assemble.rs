//! Incremental per-parameter atom builders — Algorithm 1 as a streaming
//! library, shared by the offline [`crate::convert`] pass and the
//! born-universal save pipeline in the trainer.
//!
//! The offline converter materializes every (tp, pp) slice before the TP
//! union. A [`StageAssembler`] inverts that: it accepts one rank's
//! extracted flat fragments at a time (in ascending `(tp, zero-index)`
//! order, the order the save pipeline delivers them) and scatters each
//! fragment straight into the consolidated true-shape buffer through the
//! [`Partition::shard_segments`] run map. Alignment padding runs have no
//! destination (`src_offset == None`) and are dropped on the way in, so no
//! separate `StripPadding` pass is needed. `params_to_average` keeps one
//! buffer per TP rank and finalizes with the same f64-accumulate-in-rank-
//! order mean as [`crate::ops::union_tp`], so the written atoms are
//! bitwise identical to the offline result by construction: both paths
//! move the same f32 values and commit them through [`write_atom_file`].

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use ucp_model::{param_specs, LayerRole, Partition, ShardSegment};
use ucp_storage::layout::{self, AtomFile};
use ucp_storage::Container;
use ucp_tensor::{Shape, Tensor};

use crate::checkpoint::CommonState;
use crate::language::UcpSpec;
use crate::manifest::{AtomMeta, UcpManifest};
use crate::ops::Fragment;
use crate::pattern::{FragmentSpec, ParamPattern};
use crate::util::par_map;
use crate::{Result, UcpError};

/// Serialize one atom checkpoint (header + single state section) and
/// commit it durably. This is the only writer of atom files: the offline
/// converter and the save pipeline both go through it, which is what makes
/// their on-disk trees byte-identical. Returns the encoded size; the
/// write latency is recorded under `span_path`.
pub fn write_atom_file(
    universal_dir: &Path,
    name: &str,
    pattern: &ParamPattern,
    file: AtomFile,
    atom: Tensor,
    span_path: &str,
) -> Result<u64> {
    let header = serde_json::to_string(&AtomMeta {
        name: name.to_string(),
        shape: atom.shape().clone(),
        pattern: pattern.clone(),
    })?;
    let mut c = Container::new(header);
    c.push(file.state_key(), atom);
    let path = layout::atom_path(universal_dir, name, file);
    let bytes = c.encoded_len() as u64;
    let t = ucp_telemetry::enabled().then(Instant::now);
    // Commit ordering: every atom must be durable before the manifest
    // that references it is written, which in turn precedes the
    // `latest_universal` marker.
    c.write_file_durable(&path)?;
    if let Some(t) = t {
        ucp_telemetry::global().record_span(span_path, t.elapsed());
    }
    Ok(bytes)
}

/// Assemble the universal manifest from per-stage atom metadata. A
/// pipeline-shared parameter (tied embeddings) is consolidated once per
/// owning stage; sorting then deduplicating by name keeps one entry.
pub fn build_manifest(common: &CommonState, mut atoms: Vec<AtomMeta>) -> UcpManifest {
    atoms.sort_by(|a, b| a.name.cmp(&b.name));
    atoms.dedup_by(|a, b| a.name == b.name);
    UcpManifest {
        version: UcpManifest::VERSION,
        iteration: common.iteration,
        seed: common.seed,
        data_cursor: common.data_cursor,
        adam_step: common.adam_step,
        model: common.model.clone(),
        source_label: common.parallel.label(),
        params: atoms,
    }
}

/// The atoms one pipeline stage produced: manifest entries plus volume
/// accounting (the publisher merges these across stages). Manifest entries
/// cover *every* parameter of the stage — skipped (clean) atoms are
/// published as hard links to the prior universal step's files and appear
/// in the manifest exactly like rewritten ones.
#[derive(Debug, Clone)]
pub struct StageAtoms {
    /// Manifest entries for the atoms this stage published.
    pub metas: Vec<AtomMeta>,
    /// Atom checkpoints written (one per rewritten parameter).
    pub atoms_written: usize,
    /// Clean atoms reused from the prior step via hard links.
    pub atoms_skipped: usize,
    /// Total bytes of atom payloads written.
    pub bytes_written: u64,
    /// Bytes of atom payloads reused via hard links (not rewritten).
    pub bytes_linked: u64,
}

/// Per-state-key accumulation strategy, chosen by the parameter pattern.
enum KeyAcc {
    /// `fragment_params`: scatter fragments into the consolidated buffer
    /// through the shard-segment run map (padding runs dropped).
    Scatter(Vec<f32>),
    /// `unique_params` / `replicated_params`: the tp-0 copy is the value;
    /// later TP ranks are verified against it.
    Replicate(Vec<f32>),
    /// `params_to_average`: one full buffer per TP rank, averaged at
    /// finalize with the exact `union_tp` arithmetic.
    Average(Vec<Vec<f32>>),
}

struct ParamBuilder {
    /// True consolidated shape (padding already absent).
    shape: Shape,
    pattern: ParamPattern,
    /// Owned by a different pipeline stage (tied embedding on the first
    /// stage): absorbed for completeness accounting but never written.
    skip: bool,
    /// Flattened per-TP-rank shard length (including alignment padding).
    shard_len: usize,
    /// Per-TP-rank run maps into the consolidated buffer (`Scatter` only).
    segments: Vec<Vec<ShardSegment>>,
    keys: [KeyAcc; 3],
    /// Elements received per `[key][tp]` *this step*; a not-yet-complete
    /// builder is complete at `shard_len` each.
    got: [Vec<usize>; 3],
    /// Received at least one fragment since the last `begin_step`.
    touched: bool,
    /// The consolidated buffers held a full image at some finalize — from
    /// then on, steps may patch partially (dirty fragments only) and an
    /// untouched step can reuse the previously published atom files.
    complete: bool,
}

impl ParamBuilder {
    fn new(shape: Shape, pattern: ParamPattern, skip: bool, tp: usize) -> Result<ParamBuilder> {
        let numel = shape.num_elements();
        type MkAcc = fn(usize, usize) -> KeyAcc;
        let (shard_len, segments, mk): (usize, Vec<Vec<ShardSegment>>, MkAcc) = match &pattern {
            ParamPattern::Unique => {
                if tp != 1 {
                    return Err(UcpError::Inconsistent(format!(
                        "unique_params with {tp} shards"
                    )));
                }
                (numel, Vec::new(), |n, _| KeyAcc::Replicate(vec![0.0; n]))
            }
            ParamPattern::Replicated => (numel, Vec::new(), |n, _| KeyAcc::Replicate(vec![0.0; n])),
            ParamPattern::ToAverage => (numel, Vec::new(), |n, tp| {
                KeyAcc::Average((0..tp).map(|_| vec![0.0; n]).collect())
            }),
            ParamPattern::Fragment(spec) => {
                let partition = match spec {
                    FragmentSpec::Dim { dim } => Partition::Shard { dim: *dim },
                    FragmentSpec::PaddedDim { dim, multiple } => Partition::PaddedShard {
                        dim: *dim,
                        multiple: *multiple,
                    },
                    FragmentSpec::Grouped { dim, sections } => Partition::Grouped {
                        dim: *dim,
                        sections: sections.clone(),
                    },
                    FragmentSpec::Flat1D => {
                        return Err(UcpError::Inconsistent(
                            "flat fragments must go through union_flat".into(),
                        ))
                    }
                };
                let shard_len = partition.shard_shape(&shape, tp).num_elements();
                let segments = (0..tp)
                    .map(|r| partition.shard_segments(&shape, tp, r))
                    .collect();
                (shard_len, segments, |n, _| KeyAcc::Scatter(vec![0.0; n]))
            }
        };
        Ok(ParamBuilder {
            shape,
            pattern,
            skip,
            shard_len,
            segments,
            keys: [mk(numel, tp), mk(numel, tp), mk(numel, tp)],
            got: [vec![0; tp], vec![0; tp], vec![0; tp]],
            touched: false,
            complete: false,
        })
    }

    fn apply(&mut self, ki: usize, tp: usize, frag: &Fragment, verify: bool) -> Result<()> {
        let end = frag.param_offset + frag.data.len();
        if end > self.shard_len {
            return Err(UcpError::Inconsistent(format!(
                "fragment ends at {end}, shard has {} elements",
                self.shard_len
            )));
        }
        match &mut self.keys[ki] {
            KeyAcc::Scatter(buf) => scatter_segments(&self.segments[tp], frag, buf),
            KeyAcc::Replicate(buf) => {
                if tp == 0 {
                    buf[frag.param_offset..end].copy_from_slice(&frag.data);
                } else if verify {
                    for (i, (a, b)) in buf[frag.param_offset..end]
                        .iter()
                        .zip(&frag.data)
                        .enumerate()
                    {
                        if a.to_bits() != b.to_bits() {
                            return Err(UcpError::Inconsistent(format!(
                                "replicated_params copies diverge (rank 0 vs rank {tp}) \
                                 at element {}",
                                frag.param_offset + i
                            )));
                        }
                    }
                }
            }
            KeyAcc::Average(bufs) => bufs[tp][frag.param_offset..end].copy_from_slice(&frag.data),
        }
        self.got[ki][tp] += frag.data.len();
        Ok(())
    }

    /// Materialize the three consolidated state buffers. The accumulators
    /// are retained (the assembler reuses them across save steps), so
    /// buffers are cloned out. `Average` reproduces `union_tp` exactly:
    /// f64 accumulation in TP-rank order, divide, cast.
    fn states(&self) -> [Vec<f32>; 3] {
        [&self.keys[0], &self.keys[1], &self.keys[2]].map(|k| match k {
            KeyAcc::Scatter(buf) | KeyAcc::Replicate(buf) => buf.clone(),
            KeyAcc::Average(bufs) => {
                let n = bufs.len() as f64;
                let mut acc = vec![0.0f64; bufs[0].len()];
                for buf in bufs {
                    for (a, v) in acc.iter_mut().zip(buf) {
                        *a += f64::from(*v);
                    }
                }
                acc.into_iter().map(|v| (v / n) as f32).collect()
            }
        })
    }
}

/// Copy a flat shard fragment into the consolidated buffer through the
/// shard's run map. Runs are ascending in shard offset; padding runs
/// (`src_offset == None`) have no bytes in the consolidated tensor.
fn scatter_segments(segments: &[ShardSegment], frag: &Fragment, buf: &mut [f32]) {
    let fs = frag.param_offset;
    let fe = fs + frag.data.len();
    for seg in segments {
        let ss = seg.shard_offset;
        let se = ss + seg.len;
        if se <= fs {
            continue;
        }
        if ss >= fe {
            break;
        }
        let lo = fs.max(ss);
        let hi = fe.min(se);
        if let Some(src) = seg.src_offset {
            let dst = src + (lo - ss);
            buf[dst..dst + (hi - lo)].copy_from_slice(&frag.data[lo - fs..hi - fs]);
        }
    }
}

/// Incremental consolidation of one pipeline stage's parameters into
/// universal atom checkpoints, reusable across consecutive save steps.
///
/// Feed it every `(tp, zero-index)` contribution of the stage via
/// [`StageAssembler::absorb`] — in ascending TP order, because replicated
/// parameters verify later copies against the tp-0 one — then call
/// [`StageAssembler::finalize`] to write the atoms durably.
///
/// For per-iteration cadence the assembler persists across saves: call
/// [`StageAssembler::begin_step`] with the next step's universal
/// directory, absorb only the *dirty* fragments (the consolidated buffers
/// retain last step's image, so partial contributions patch it), then
/// [`StageAssembler::finalize_step`]. A parameter that received no
/// fragments at all is clean; its three atom files are published as hard
/// links to the previous universal step's files instead of being
/// rewritten, so save bytes scale with what actually changed.
pub struct StageAssembler {
    universal_dir: PathBuf,
    tp_degree: usize,
    verify_replicas: bool,
    last_tp: usize,
    params: BTreeMap<String, ParamBuilder>,
}

impl StageAssembler {
    /// Set up builders for every parameter of stage `pp` (named by
    /// `params`, the stage's flat-layout slot order), deriving each
    /// pattern from the model exactly as the offline converter does.
    pub fn new(
        universal_dir: &Path,
        common: &CommonState,
        pp: usize,
        params: &[String],
        verify_replicas: bool,
    ) -> Result<StageAssembler> {
        let parallel = common.parallel;
        let derived = UcpSpec::from_model(&common.model, parallel.tp, &common.params_to_average);
        let all_specs = param_specs(&common.model);
        std::fs::create_dir_all(universal_dir)?;
        let mut builders = BTreeMap::new();
        for name in params {
            let pattern = derived
                .pattern_of(name)
                .cloned()
                .ok_or_else(|| UcpError::Inconsistent(format!("no pattern rule matches {name}")))?;
            let spec = all_specs
                .iter()
                .find(|s| &s.name == name)
                .ok_or_else(|| UcpError::Inconsistent(format!("unknown parameter {name}")))?;
            // A tied embedding is assembled on both pipeline-end stages;
            // only the last one writes it (matching the offline
            // converter, where the ascending-pp loop makes the last
            // stage's copy win), so the two assemblers never race on the
            // same atom path.
            let skip = matches!(spec.role, LayerRole::SharedEmbedding)
                && parallel.pp > 1
                && pp + 1 != parallel.pp;
            builders.insert(
                name.clone(),
                ParamBuilder::new(spec.shape.clone(), pattern, skip, parallel.tp)?,
            );
        }
        Ok(StageAssembler {
            universal_dir: universal_dir.to_path_buf(),
            tp_degree: parallel.tp,
            verify_replicas,
            last_tp: 0,
            params: builders,
        })
    }

    /// Start assembling the next save step into `universal_dir`: resets
    /// the per-step coverage accounting and the ascending-TP cursor while
    /// keeping the consolidated buffers (last step's image) so dirty
    /// fragments can patch them in place.
    pub fn begin_step(&mut self, universal_dir: &Path) -> Result<()> {
        std::fs::create_dir_all(universal_dir)?;
        self.universal_dir = universal_dir.to_path_buf();
        self.last_tp = 0;
        for b in self.params.values_mut() {
            b.touched = false;
            for per_tp in &mut b.got {
                per_tp.iter_mut().for_each(|g| *g = 0);
            }
        }
        Ok(())
    }

    /// Absorb one rank's extracted flat fragments: `fragments` are
    /// `(param name, state key index, fragment)` from that rank's ZeRO
    /// chunk of TP slice `tp`. Contributions must arrive in ascending
    /// `tp` order.
    pub fn absorb(&mut self, tp: usize, fragments: Vec<(String, usize, Fragment)>) -> Result<()> {
        if tp >= self.tp_degree {
            return Err(UcpError::Inconsistent(format!(
                "contribution from tp {tp}, stage has {} TP ranks",
                self.tp_degree
            )));
        }
        if tp < self.last_tp {
            return Err(UcpError::Inconsistent(format!(
                "contribution from tp {tp} after tp {}: replicated verification \
                 requires ascending TP order",
                self.last_tp
            )));
        }
        self.last_tp = tp;
        for (name, ki, frag) in fragments {
            let b = self
                .params
                .get_mut(&name)
                .ok_or_else(|| UcpError::Inconsistent(format!("fragment for unknown {name}")))?;
            b.touched = true;
            b.apply(ki, tp, &frag, self.verify_replicas)?;
        }
        Ok(())
    }

    /// Verify every parameter is fully covered, then write this stage's
    /// atoms durably. One-shot variant of [`StageAssembler::finalize_step`]
    /// for callers that use a fresh assembler per save.
    pub fn finalize(mut self, workers: usize, span_path: &str) -> Result<StageAtoms> {
        self.finalize_step(workers, span_path, None)
    }

    /// Verify coverage, then publish this step's atoms (parallel over
    /// parameters, write latency under `span_path`): touched parameters
    /// are rewritten from the patched consolidated buffers; clean ones
    /// (complete from an earlier step, no fragments this step) are hard
    /// linked from `link_from` — the previous universal step's directory —
    /// instead of being rewritten. Skipped (other-stage-owned) parameters
    /// are accounted but never published.
    ///
    /// Coverage rules: a parameter that has never been complete must be
    /// fully covered this step (first save sends everything); once
    /// complete, any partial patch keeps it complete.
    pub fn finalize_step(
        &mut self,
        workers: usize,
        span_path: &str,
        link_from: Option<&Path>,
    ) -> Result<StageAtoms> {
        for (name, b) in &self.params {
            if b.complete {
                continue;
            }
            for (ki, per_tp) in b.got.iter().enumerate() {
                for (tp, &got) in per_tp.iter().enumerate() {
                    if got != b.shard_len {
                        return Err(UcpError::Inconsistent(format!(
                            "atom {name} key {ki}: tp {tp} contributed {got} of {} elements",
                            b.shard_len
                        )));
                    }
                }
            }
        }
        let universal = self.universal_dir.clone();
        let entries: Vec<(&String, &ParamBuilder)> =
            self.params.iter().filter(|(_, b)| !b.skip).collect();
        let published = par_map(entries.len(), workers, |i| {
            let (name, b) = entries[i];
            let meta = AtomMeta {
                name: (*name).clone(),
                shape: b.shape.clone(),
                pattern: b.pattern.clone(),
            };
            // Clean atom with a prior image on disk: reuse it. (Defensive:
            // if no prior directory was supplied, fall back to rewriting —
            // the retained buffers hold the same bits.)
            if b.complete && !b.touched {
                if let Some(prev) = link_from {
                    let t = ucp_telemetry::enabled().then(Instant::now);
                    let mut linked = 0u64;
                    for file in AtomFile::ALL {
                        let src = layout::atom_path(prev, name, file);
                        let dst = layout::atom_path(&universal, name, file);
                        linked += std::fs::metadata(&src)?.len();
                        ucp_storage::commit::link_file_durable(&src, &dst)?;
                    }
                    if let Some(t) = t {
                        ucp_telemetry::global().record_span("save/atom_link", t.elapsed());
                    }
                    return Ok((meta, 0u64, linked));
                }
            }
            let states = b.states();
            let mut bytes = 0u64;
            for (file, data) in AtomFile::ALL.into_iter().zip(states) {
                let atom = Tensor::from_vec(data, b.shape.clone()).map_err(UcpError::Tensor)?;
                bytes += write_atom_file(&universal, name, &meta.pattern, file, atom, span_path)?;
            }
            Ok((meta, bytes, 0u64))
        })?;
        // Every parameter now has a full image (in the buffers and, for
        // non-skip ones, on disk): later steps may patch partially.
        for b in self.params.values_mut() {
            b.complete = true;
        }
        let mut out = StageAtoms {
            metas: Vec::with_capacity(published.len()),
            atoms_written: 0,
            atoms_skipped: 0,
            bytes_written: 0,
            bytes_linked: 0,
        };
        for (meta, bytes, linked) in published {
            if bytes > 0 || linked == 0 {
                out.atoms_written += 1;
                out.bytes_written += bytes;
            } else {
                out.atoms_skipped += 1;
                out.bytes_linked += linked;
            }
            out.metas.push(meta);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{extract_flat, strip_padding, union_tp};
    use ucp_model::{ModelConfig, ParamSpec};
    use ucp_parallel::{FlatLayout, ParallelConfig, ZeroStage};
    use ucp_tensor::DetRng;

    fn common(parallel: ParallelConfig) -> CommonState {
        CommonState {
            iteration: 6,
            seed: 17,
            data_cursor: 48,
            adam_step: 6,
            model: ModelConfig::gpt3_tiny(),
            parallel,
            params_to_average: vec![],
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ucp_assemble_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// Feed a full TP×ZeRO fan-out of gpt3-tiny through the assembler and
    /// check every written atom bitwise against the offline union path.
    #[test]
    fn assembled_atoms_match_offline_union_bitwise() {
        let tp = 2;
        let zero = 2;
        let parallel = ParallelConfig::new(tp, 1, zero, 1, ZeroStage::Zero1);
        let c = common(parallel);
        let specs = param_specs(&c.model);
        let rng = DetRng::new(5);
        let full: Vec<(&ParamSpec, Tensor)> = specs
            .iter()
            .map(|s| {
                let t = Tensor::randn(s.shape.clone(), 1.0, &rng.derive(&s.name));
                (s, t)
            })
            .collect();
        let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();

        let dir = tmp("bitwise");
        let mut asm = StageAssembler::new(&dir, &c, 0, &names, true).unwrap();
        // Per TP rank: shard every param, flatten ZeRO-style, extract per
        // zero index — the exact data flow of a training rank's snapshot.
        let mut shards_by_name: BTreeMap<String, Vec<Tensor>> = BTreeMap::new();
        for r in 0..tp {
            let sharded: Vec<(String, Tensor)> = full
                .iter()
                .map(|(s, t)| (s.name.clone(), s.partition.shard(t, tp, r)))
                .collect();
            for (n, t) in &sharded {
                shards_by_name.entry(n.clone()).or_default().push(t.clone());
            }
            let shapes: Vec<(String, ucp_tensor::Shape)> = sharded
                .iter()
                .map(|(n, t)| (n.clone(), t.shape().clone()))
                .collect();
            let layout = FlatLayout::build(&shapes, 8, zero);
            let flat = layout.flatten(|name| {
                sharded
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, t)| t)
                    .expect("all stage params sharded")
            });
            for zi in 0..zero {
                let chunk = &flat[layout.rank_range(zi)];
                let mut frags = Vec::new();
                for (ki, scale) in [1.0f32, 0.5, 0.25].into_iter().enumerate() {
                    for (name, mut frag) in extract_flat(&layout, zi, chunk) {
                        for v in &mut frag.data {
                            *v *= scale;
                        }
                        frags.push((name, ki, frag));
                    }
                }
                asm.absorb(r, frags).unwrap();
            }
        }
        let stage = asm.finalize(2, "save/atom_write").unwrap();
        assert_eq!(stage.atoms_written, specs.len());
        assert!(stage.bytes_written > 0);

        let derived = UcpSpec::from_model(&c.model, tp, &[]);
        for spec in &specs {
            let pattern = derived.pattern_of(&spec.name).unwrap();
            for (ki, (file, scale)) in AtomFile::ALL
                .into_iter()
                .zip([1.0f32, 0.5, 0.25])
                .enumerate()
            {
                let shards: Vec<Tensor> = shards_by_name[&spec.name]
                    .iter()
                    .map(|t| {
                        let data = t.as_slice().iter().map(|v| v * scale).collect();
                        Tensor::from_vec(data, t.shape().clone()).unwrap()
                    })
                    .collect();
                let mut expect = union_tp(pattern, &shards, true).unwrap();
                if matches!(
                    pattern,
                    ParamPattern::Fragment(FragmentSpec::PaddedDim { .. })
                ) {
                    expect = strip_padding(&expect, &spec.shape).unwrap();
                }
                let written = Container::read_file(&layout::atom_path(&dir, &spec.name, file))
                    .unwrap()
                    .get(file.state_key())
                    .unwrap()
                    .clone();
                assert!(
                    written.bitwise_eq(&expect),
                    "{} key {ki} diverges from offline union",
                    spec.name
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incomplete_stage_fails_finalize() {
        let parallel = ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1);
        let c = common(parallel);
        let names = vec!["final_layernorm.weight".to_string()];
        let dir = tmp("incomplete");
        let asm = StageAssembler::new(&dir, &c, 0, &names, true).unwrap();
        // No contributions at all: finalize must refuse.
        let err = asm.finalize(1, "save/atom_write").unwrap_err();
        assert!(err.to_string().contains("contributed 0"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replicated_divergence_detected() {
        let tp = 2;
        let parallel = ParallelConfig::new(tp, 1, 1, 1, ZeroStage::Zero1);
        let c = common(parallel);
        let name = "final_layernorm.weight".to_string();
        let spec_shape = param_specs(&c.model)
            .iter()
            .find(|s| s.name == name)
            .unwrap()
            .shape
            .clone();
        let n = spec_shape.num_elements();
        let dir = tmp("diverge");
        let mut asm = StageAssembler::new(&dir, &c, 0, std::slice::from_ref(&name), true).unwrap();
        let frag = |v: f32| Fragment {
            param_offset: 0,
            data: vec![v; n],
        };
        asm.absorb(0, vec![(name.clone(), 0, frag(1.0))]).unwrap();
        let err = asm
            .absorb(1, vec![(name.clone(), 0, frag(2.0))])
            .unwrap_err();
        assert!(err.to_string().contains("diverge"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn absorb_rejects_descending_tp_order() {
        let parallel = ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1);
        let c = common(parallel);
        let dir = tmp("order");
        let mut asm = StageAssembler::new(&dir, &c, 0, &[], true).unwrap();
        asm.absorb(1, Vec::new()).unwrap();
        let err = asm.absorb(0, Vec::new()).unwrap_err();
        assert!(err.to_string().contains("ascending TP order"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn to_average_matches_union_tp_arithmetic() {
        // Drive the Average accumulator directly: three "TP" copies whose
        // mean is not exactly representable; must bitwise-match union_tp.
        let shape = Shape::new([4]);
        let mut b = ParamBuilder::new(shape.clone(), ParamPattern::ToAverage, false, 3).unwrap();
        let copies = [
            vec![0.1f32, 1.7, -2.3, 0.0],
            vec![0.3, -0.9, 5.5, 1.0],
            vec![0.7, 2.2, 0.1, -1.0],
        ];
        for (tp, data) in copies.iter().enumerate() {
            for ki in 0..3 {
                b.apply(
                    ki,
                    tp,
                    &Fragment {
                        param_offset: 0,
                        data: data.clone(),
                    },
                    true,
                )
                .unwrap();
            }
        }
        let states = b.states();
        let shards: Vec<Tensor> = copies
            .iter()
            .map(|d| Tensor::from_vec(d.clone(), shape.clone()).unwrap())
            .collect();
        let expect = union_tp(&ParamPattern::ToAverage, &shards, false).unwrap();
        for s in states {
            let t = Tensor::from_vec(s, shape.clone()).unwrap();
            assert!(t.bitwise_eq(&expect));
        }
    }

    #[test]
    fn incremental_step_links_clean_atoms_and_patches_dirty_ones() {
        use std::os::unix::fs::MetadataExt;
        // Two single-TP params; step 2 touches only one of them. The clean
        // one must come back as hard links to step 1's files; the dirty one
        // must be rewritten with the patch applied.
        let parallel = ParallelConfig::new(1, 1, 1, 1, ZeroStage::Zero0);
        let c = common(parallel);
        let dirty_name = "final_layernorm.weight".to_string();
        let clean_name = "final_layernorm.bias".to_string();
        let names = vec![dirty_name.clone(), clean_name.clone()];
        let n = param_specs(&c.model)
            .iter()
            .find(|s| s.name == dirty_name)
            .unwrap()
            .shape
            .num_elements();
        let base = tmp("incr_link");
        let step1 = base.join("global_step1_universal");
        let step2 = base.join("global_step2_universal");
        let full = |v: f32| Fragment {
            param_offset: 0,
            data: vec![v; n],
        };

        let mut asm = StageAssembler::new(&step1, &c, 0, &names, true).unwrap();
        let mut frags = Vec::new();
        for ki in 0..3 {
            frags.push((dirty_name.clone(), ki, full(1.0)));
            frags.push((clean_name.clone(), ki, full(2.0)));
        }
        asm.absorb(0, frags).unwrap();
        let s1 = asm.finalize_step(2, "save/atom_write", None).unwrap();
        assert_eq!((s1.atoms_written, s1.atoms_skipped), (2, 0));

        // Step 2: patch a sub-range of the dirty param only.
        asm.begin_step(&step2).unwrap();
        let patch = Fragment {
            param_offset: 1,
            data: vec![9.0; 2],
        };
        asm.absorb(
            0,
            (0..3)
                .map(|ki| (dirty_name.clone(), ki, patch.clone()))
                .collect(),
        )
        .unwrap();
        let s2 = asm
            .finalize_step(2, "save/atom_write", Some(&step1))
            .unwrap();
        assert_eq!((s2.atoms_written, s2.atoms_skipped), (1, 1));
        assert!(s2.bytes_linked > 0);
        assert_eq!(s2.metas.len(), 2, "manifest lists linked atoms too");

        for file in AtomFile::ALL {
            // Clean atom: same inode as step 1, two names.
            let src = layout::atom_path(&step1, &clean_name, file);
            let dst = layout::atom_path(&step2, &clean_name, file);
            assert_eq!(
                std::fs::metadata(&src).unwrap().ino(),
                std::fs::metadata(&dst).unwrap().ino(),
                "clean atom must be hard linked"
            );
            // Dirty atom: fresh file with the patch applied on the
            // retained image.
            let t = Container::read_file(&layout::atom_path(&step2, &dirty_name, file))
                .unwrap()
                .get(file.state_key())
                .unwrap()
                .clone();
            let got = t.as_slice().to_vec();
            assert_eq!(got[0], 1.0);
            assert_eq!(&got[1..3], &[9.0, 9.0]);
            assert!(got[3..].iter().all(|&v| v == 1.0));
        }
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn first_step_must_be_fully_covered_even_if_touched() {
        // Partial coverage on a never-complete builder is an error — the
        // incremental path only tolerates partial absorbs after a full
        // image exists.
        let parallel = ParallelConfig::new(1, 1, 1, 1, ZeroStage::Zero0);
        let c = common(parallel);
        let name = "final_layernorm.weight".to_string();
        let dir = tmp("incr_partial");
        let mut asm = StageAssembler::new(&dir, &c, 0, std::slice::from_ref(&name), true).unwrap();
        let patch = Fragment {
            param_offset: 0,
            data: vec![1.0; 2],
        };
        asm.absorb(
            0,
            (0..3).map(|ki| (name.clone(), ki, patch.clone())).collect(),
        )
        .unwrap();
        let err = asm.finalize_step(1, "save/atom_write", None).unwrap_err();
        assert!(err.to_string().contains("contributed"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_build_sorts_and_dedups() {
        let parallel = ParallelConfig::new(1, 2, 1, 1, ZeroStage::Zero1);
        let c = common(parallel);
        let meta = |n: &str| AtomMeta {
            name: n.into(),
            shape: Shape::new([2]),
            pattern: ParamPattern::Unique,
        };
        let m = build_manifest(&c, vec![meta("b"), meta("a"), meta("b")]);
        assert_eq!(m.iteration, 6);
        assert_eq!(m.source_label, parallel.label());
        let names: Vec<&str> = m.params.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
