//! The native distributed checkpoint schema — what training writes.
//!
//! UCP's zero-save-overhead property (Fig. 11) comes from leaving this
//! format exactly as a normal distributed run would write it; conversion to
//! the universal format happens lazily, only when a resume detects a
//! configuration change.
//!
//! Per step `N`, under `global_step<N>/`:
//!
//! - one `model_states.ucpt` per (tp, pp) model slice, written by the
//!   dp=0/sp=0 replica: the bf16/fp16 model parameter shards plus the
//!   common training state;
//! - one `optim_states.ucpt` per (dp, tp, pp): this DP rank's ZeRO chunk of
//!   the flat fp32 master, `exp_avg`, and `exp_avg_sq`, plus the flat
//!   layout metadata needed to reassemble parameters from chunks.

use std::path::Path;

use serde::{Deserialize, Serialize};
use ucp_model::{ModelConfig, ParamStore};
use ucp_parallel::{FlatLayout, ParallelConfig};
use ucp_storage::{layout, Container};
use ucp_tensor::Tensor;

use crate::{Result, UcpError};

/// Training state shared by every rank (and carried into the universal
/// manifest): everything needed to resume besides tensors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommonState {
    /// Completed training iterations.
    pub iteration: u64,
    /// Run seed (drives data order and any dropout-style randomness).
    pub seed: u64,
    /// Samples consumed from the data stream.
    pub data_cursor: u64,
    /// Adam step count.
    pub adam_step: u64,
    /// Model architecture.
    pub model: ModelConfig,
    /// The parallelism strategy that produced this checkpoint.
    pub parallel: ParallelConfig,
    /// Replicated parameters that were updated independently per rank and
    /// must be averaged on consolidation (`params_to_average`).
    pub params_to_average: Vec<String>,
}

#[derive(Serialize, Deserialize)]
struct ModelStatesHeader {
    common: CommonState,
    tp: usize,
    pp: usize,
}

#[derive(Serialize, Deserialize)]
struct OptimStatesHeader {
    common: CommonState,
    dp: usize,
    tp: usize,
    pp: usize,
    layout: FlatLayout,
}

/// One DP rank's slice of the flat optimizer state.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimShard {
    /// DP rank that owns this chunk.
    pub dp: usize,
    /// Flat layout of the whole (tp, pp) slice this chunk belongs to.
    pub layout: FlatLayout,
    /// fp32 master chunk.
    pub fp32: Vec<f32>,
    /// Adam first-moment chunk.
    pub exp_avg: Vec<f32>,
    /// Adam second-moment chunk.
    pub exp_avg_sq: Vec<f32>,
}

impl OptimShard {
    /// The flat element range this chunk covers.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.layout.rank_range(self.dp)
    }
}

/// Write a (tp, pp) slice's model-states file.
pub fn save_model_states(
    step_dir: &Path,
    common: &CommonState,
    tp: usize,
    pp: usize,
    params: &ParamStore,
) -> Result<()> {
    save_model_states_impl(step_dir, common, tp, pp, params, false)
}

/// [`save_model_states`] with an `fsync` before returning, so telemetry
/// splits serialization (`storage/write`) from durability (`storage/fsync`).
pub fn save_model_states_durable(
    step_dir: &Path,
    common: &CommonState,
    tp: usize,
    pp: usize,
    params: &ParamStore,
) -> Result<()> {
    save_model_states_impl(step_dir, common, tp, pp, params, true)
}

fn save_model_states_impl(
    step_dir: &Path,
    common: &CommonState,
    tp: usize,
    pp: usize,
    params: &ParamStore,
    durable: bool,
) -> Result<()> {
    let header = serde_json::to_string(&ModelStatesHeader {
        common: common.clone(),
        tp,
        pp,
    })?;
    let mut c = Container::new(header);
    for (name, t) in params.iter() {
        c.push(name.clone(), t.clone());
    }
    let path = layout::model_states_path(step_dir, tp, pp);
    if durable {
        c.write_file_durable(&path)?;
    } else {
        c.write_file(&path)?;
    }
    Ok(())
}

/// Read a model-states file: `(common, tp, pp, named shards)`.
pub fn load_model_states(
    step_dir: &Path,
    tp: usize,
    pp: usize,
) -> Result<(CommonState, Vec<(String, Tensor)>)> {
    let c = Container::read_file(&layout::model_states_path(step_dir, tp, pp))?;
    let header: ModelStatesHeader = serde_json::from_str(&c.header)?;
    if header.tp != tp || header.pp != pp {
        return Err(UcpError::Inconsistent(format!(
            "model_states at ({tp}, {pp}) claims ({}, {})",
            header.tp, header.pp
        )));
    }
    Ok((
        header.common,
        c.sections.into_iter().map(|s| (s.name, s.tensor)).collect(),
    ))
}

/// Write one (dp, tp, pp) rank's optimizer-states file.
pub fn save_optim_states(
    step_dir: &Path,
    common: &CommonState,
    tp: usize,
    pp: usize,
    shard: &OptimShard,
) -> Result<()> {
    save_optim_states_impl(step_dir, common, tp, pp, shard, false)
}

/// [`save_optim_states`] with an `fsync` before returning, so telemetry
/// splits serialization (`storage/write`) from durability (`storage/fsync`).
pub fn save_optim_states_durable(
    step_dir: &Path,
    common: &CommonState,
    tp: usize,
    pp: usize,
    shard: &OptimShard,
) -> Result<()> {
    save_optim_states_impl(step_dir, common, tp, pp, shard, true)
}

fn save_optim_states_impl(
    step_dir: &Path,
    common: &CommonState,
    tp: usize,
    pp: usize,
    shard: &OptimShard,
    durable: bool,
) -> Result<()> {
    let header = serde_json::to_string(&OptimStatesHeader {
        common: common.clone(),
        dp: shard.dp,
        tp,
        pp,
        layout: shard.layout.clone(),
    })?;
    let mut c = Container::new(header);
    let chunk = shard.fp32.len();
    for (key, data) in [
        ("fp32", &shard.fp32),
        ("exp_avg", &shard.exp_avg),
        ("exp_avg_sq", &shard.exp_avg_sq),
    ] {
        c.push(
            key,
            Tensor::from_vec(data.clone(), [chunk]).map_err(UcpError::Tensor)?,
        );
    }
    let path = layout::optim_states_path(step_dir, shard.dp, tp, pp);
    if durable {
        c.write_file_durable(&path)?;
    } else {
        c.write_file(&path)?;
    }
    Ok(())
}

/// Read one (dp, tp, pp) rank's optimizer-states file.
pub fn load_optim_states(
    step_dir: &Path,
    dp: usize,
    tp: usize,
    pp: usize,
) -> Result<(CommonState, OptimShard)> {
    let c = Container::read_file(&layout::optim_states_path(step_dir, dp, tp, pp))?;
    let header: OptimStatesHeader = serde_json::from_str(&c.header)?;
    if header.dp != dp || header.tp != tp || header.pp != pp {
        return Err(UcpError::Inconsistent(format!(
            "optim_states at ({dp}, {tp}, {pp}) claims ({}, {}, {})",
            header.dp, header.tp, header.pp
        )));
    }
    let take = |key: &str| -> Result<Vec<f32>> {
        c.get(key)
            .map(|t| t.as_slice().to_vec())
            .ok_or_else(|| UcpError::Inconsistent(format!("missing section {key}")))
    };
    let shard = OptimShard {
        dp,
        layout: header.layout,
        fp32: take("fp32")?,
        exp_avg: take("exp_avg")?,
        exp_avg_sq: take("exp_avg_sq")?,
    };
    let expected = shard.layout.chunk;
    for (key, buf) in [
        ("fp32", &shard.fp32),
        ("exp_avg", &shard.exp_avg),
        ("exp_avg_sq", &shard.exp_avg_sq),
    ] {
        if buf.len() != expected {
            return Err(UcpError::Inconsistent(format!(
                "section {key} has {} elements, layout chunk is {expected}",
                buf.len()
            )));
        }
    }
    Ok((header.common, shard))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucp_parallel::ZeroStage;
    use ucp_tensor::{DetRng, Shape};

    fn common() -> CommonState {
        CommonState {
            iteration: 100,
            seed: 42,
            data_cursor: 25_600,
            adam_step: 100,
            model: ModelConfig::gpt3_tiny(),
            parallel: ParallelConfig::new(2, 2, 2, 1, ZeroStage::Zero1),
            params_to_average: vec![],
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ucp_ckpt_test_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn model_states_roundtrip() {
        let dir = tmp("model");
        let rng = DetRng::new(3);
        let mut store = ParamStore::new();
        store.insert("a.weight", Tensor::randn([4, 2], 1.0, &rng.derive("a")));
        store.insert("b.weight", Tensor::randn([3], 1.0, &rng.derive("b")));
        save_model_states(&dir, &common(), 1, 0, &store).unwrap();
        let (c, params) = load_model_states(&dir, 1, 0).unwrap();
        assert_eq!(c, common());
        assert_eq!(params.len(), 2);
        assert!(params[0].1.bitwise_eq(store.get(&params[0].0)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn optim_states_roundtrip() {
        let dir = tmp("optim");
        let layout = FlatLayout::build(&[("p".to_string(), Shape::new([10]))], 4, 2);
        let shard = OptimShard {
            dp: 1,
            layout: layout.clone(),
            fp32: vec![1.0; layout.chunk],
            exp_avg: vec![2.0; layout.chunk],
            exp_avg_sq: vec![3.0; layout.chunk],
        };
        save_optim_states(&dir, &common(), 0, 1, &shard).unwrap();
        let (c, back) = load_optim_states(&dir, 1, 0, 1).unwrap();
        assert_eq!(c.iteration, 100);
        assert_eq!(back, shard);
        assert_eq!(back.range(), layout.chunk..2 * layout.chunk);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_coordinates_detected() {
        let dir = tmp("coords");
        let store = ParamStore::new();
        save_model_states(&dir, &common(), 0, 0, &store).unwrap();
        // Copy the file to a wrong location and load from there.
        let src = layout::model_states_path(&dir, 0, 0);
        let dst = layout::model_states_path(&dir, 1, 0);
        std::fs::create_dir_all(dst.parent().unwrap()).unwrap();
        std::fs::copy(&src, &dst).unwrap();
        assert!(matches!(
            load_model_states(&dir, 1, 0),
            Err(UcpError::Inconsistent(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_storage_error() {
        let dir = tmp("missing");
        assert!(matches!(
            load_optim_states(&dir, 0, 0, 0),
            Err(UcpError::Storage(_))
        ));
    }
}
