//! The universal checkpoint manifest: the index of atom checkpoints plus
//! the training state needed to resume under any configuration.

use std::path::Path;

use serde::{Deserialize, Serialize};
use ucp_model::ModelConfig;
use ucp_storage::{layout, Container};
use ucp_tensor::Shape;

use crate::pattern::ParamPattern;
use crate::Result;

/// Metadata of one atom checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtomMeta {
    /// Canonical parameter name (also the atom directory name).
    pub name: String,
    /// Full, consolidated shape (padding already stripped).
    pub shape: Shape,
    /// The source-side pattern this atom was consolidated from.
    pub pattern: ParamPattern,
}

/// The universal checkpoint's top-level manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UcpManifest {
    /// Manifest format version.
    pub version: u32,
    /// Completed training iterations at checkpoint time.
    pub iteration: u64,
    /// Run seed.
    pub seed: u64,
    /// Samples consumed from the data stream.
    pub data_cursor: u64,
    /// Adam step count.
    pub adam_step: u64,
    /// Model architecture.
    pub model: ModelConfig,
    /// Human-readable label of the source strategy (e.g.
    /// `tp2_pp2_dp2_sp1_z1`), informational only — targets never depend on
    /// it, which is the whole point.
    pub source_label: String,
    /// Atom index.
    pub params: Vec<AtomMeta>,
}

impl UcpManifest {
    /// Current manifest version.
    pub const VERSION: u32 = 1;

    /// Look up an atom by name.
    pub fn atom(&self, name: &str) -> Option<&AtomMeta> {
        self.params.iter().find(|a| a.name == name)
    }

    /// Persist to `manifest.ucpt` inside the universal directory,
    /// durably: the manifest is the commit record of a conversion, so it
    /// must never become readable before the atoms it indexes are on
    /// disk, nor survive a crash half-written.
    pub fn save(&self, universal_dir: &Path) -> Result<()> {
        let c = Container::new(serde_json::to_string(self)?);
        c.write_file_durable(&layout::manifest_path(universal_dir))?;
        Ok(())
    }

    /// Read from a universal directory.
    pub fn load(universal_dir: &Path) -> Result<UcpManifest> {
        let c = Container::read_file(&layout::manifest_path(universal_dir))?;
        Ok(serde_json::from_str(&c.header)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::FragmentSpec;

    fn sample() -> UcpManifest {
        UcpManifest {
            version: UcpManifest::VERSION,
            iteration: 100,
            seed: 7,
            data_cursor: 12_800,
            adam_step: 100,
            model: ModelConfig::gpt3_tiny(),
            source_label: "tp2_pp2_dp2_sp1_z1".into(),
            params: vec![
                AtomMeta {
                    name: "embedding.word_embeddings.weight".into(),
                    shape: Shape::new([256, 32]),
                    pattern: ParamPattern::Fragment(FragmentSpec::Dim { dim: 0 }),
                },
                AtomMeta {
                    name: "final_layernorm.weight".into(),
                    shape: Shape::new([32]),
                    pattern: ParamPattern::Replicated,
                },
            ],
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("ucp_manifest_test");
        std::fs::remove_dir_all(&dir).ok();
        let m = sample();
        m.save(&dir).unwrap();
        let back = UcpManifest::load(&dir).unwrap();
        assert_eq!(back, m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atom_lookup() {
        let m = sample();
        assert!(m.atom("final_layernorm.weight").is_some());
        assert!(m.atom("nope").is_none());
    }
}
