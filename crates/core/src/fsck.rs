//! `ucp fsck`: offline verification and repair of a checkpoint tree.
//!
//! Walks a checkpoint base directory and checks what the crash-consistent
//! commit protocol promises: every step the markers can reach is complete
//! and checksum-clean. Concretely, per native step it verifies that every
//! `model_states` / `optim_states` file the checkpoint's own parallel
//! configuration implies exists and reads back with valid CRCs; per
//! universal step it verifies the manifest and all three atom files of
//! every indexed parameter. Incomplete or corrupt step trees are
//! quarantined (renamed to `<name>.corrupt`) so loaders and retention
//! never touch them, leftover `.tmp` staging files from interrupted
//! commits are swept, and a dangling `latest` marker is repointed at the
//! newest surviving complete step.

use std::path::Path;

use serde::Serialize;
use ucp_storage::layout::AtomFile;
use ucp_storage::{layout, Container};

use crate::checkpoint::load_model_states;
use crate::manifest::UcpManifest;
use crate::Result;

/// What fsck is allowed to change on disk.
#[derive(Debug, Clone)]
pub struct FsckOptions {
    /// Rename bad step trees to `<name>.corrupt` and repair dangling
    /// markers. When false, fsck only reports.
    pub repair: bool,
}

impl Default for FsckOptions {
    fn default() -> FsckOptions {
        FsckOptions { repair: true }
    }
}

/// One defect found in the tree.
#[derive(Debug, Clone, Serialize)]
pub struct FsckProblem {
    /// Path of the offending file or directory (relative to the base).
    pub path: String,
    /// What is wrong with it.
    pub detail: String,
}

/// Outcome of an fsck pass.
#[derive(Debug, Clone, Default, Serialize)]
pub struct FsckReport {
    /// Native steps examined.
    pub steps_checked: Vec<u64>,
    /// Universal steps examined.
    pub universal_checked: Vec<u64>,
    /// Container files that read back checksum-clean.
    pub files_verified: usize,
    /// Leftover `.tmp` staging files removed.
    pub tmp_removed: usize,
    /// Defects found (empty ⇒ the tree is clean).
    pub problems: Vec<FsckProblem>,
    /// Step trees renamed to `*.corrupt`.
    pub quarantined: Vec<String>,
    /// Markers rewritten to the newest surviving complete step.
    pub markers_repaired: Vec<String>,
    /// Complete records read from the run journal (0 when absent).
    pub journal_records: usize,
}

impl FsckReport {
    /// Whether the tree passed verification.
    pub fn clean(&self) -> bool {
        self.problems.is_empty()
    }

    /// Machine-readable report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
    }
}

fn rel(base: &Path, path: &Path) -> String {
    path.strip_prefix(base)
        .unwrap_or(path)
        .display()
        .to_string()
}

/// Verify one container file, recording the outcome.
fn verify_container(base: &Path, path: &Path, report: &mut FsckReport) -> bool {
    match Container::read_file(path) {
        Ok(_) => {
            report.files_verified += 1;
            true
        }
        Err(e) => {
            report.problems.push(FsckProblem {
                path: rel(base, path),
                detail: e.to_string(),
            });
            false
        }
    }
}

/// Verify a native step tree against the parallel configuration recorded
/// in its own first model-states file. Returns whether the step is sound.
fn check_native_step(base: &Path, step: u64, report: &mut FsckReport) -> bool {
    let dir = layout::step_dir(base, step);
    let parallel = match load_model_states(&dir, 0, 0) {
        Ok((common, _)) => common.parallel,
        Err(e) => {
            report.problems.push(FsckProblem {
                path: rel(base, &dir),
                detail: format!("cannot read model_states (0, 0): {e}"),
            });
            return false;
        }
    };
    report.files_verified += 1; // the (0, 0) model states just read clean
    let mut sound = true;
    for pp in 0..parallel.pp {
        for tp in 0..parallel.tp {
            // (0, 0) was already verified by the header read above.
            if (tp, pp) != (0, 0) {
                sound &= verify_container(base, &layout::model_states_path(&dir, tp, pp), report);
            }
            for dp in 0..parallel.dp * parallel.sp {
                sound &=
                    verify_container(base, &layout::optim_states_path(&dir, dp, tp, pp), report);
            }
        }
    }
    sound
}

/// Verify a universal step tree against its manifest. Returns whether the
/// step is sound.
fn check_universal_step(base: &Path, step: u64, report: &mut FsckReport) -> bool {
    let dir = layout::universal_dir(base, step);
    let manifest = match UcpManifest::load(&dir) {
        Ok(m) => {
            report.files_verified += 1;
            m
        }
        Err(e) => {
            report.problems.push(FsckProblem {
                path: rel(base, &dir),
                detail: format!("cannot read manifest: {e}"),
            });
            return false;
        }
    };
    let mut sound = true;
    for atom in &manifest.params {
        for file in AtomFile::ALL {
            sound &= verify_container(base, &layout::atom_path(&dir, &atom.name, file), report);
        }
    }
    sound
}

/// Rename a bad step tree to `<name>.corrupt` (adding `.N` if a previous
/// quarantine already claimed the name).
fn quarantine(base: &Path, dir: &Path, report: &mut FsckReport) -> Result<()> {
    let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("step");
    let mut target = dir.with_file_name(format!("{name}.corrupt"));
    let mut n = 0;
    while target.exists() {
        n += 1;
        target = dir.with_file_name(format!("{name}.corrupt.{n}"));
    }
    std::fs::rename(dir, &target)?;
    report.quarantined.push(rel(base, &target));
    Ok(())
}

/// Universal steps present under `base` (`global_step<N>_universal`).
fn list_universal_steps(base: &Path) -> Vec<u64> {
    let mut steps = Vec::new();
    let Ok(entries) = std::fs::read_dir(base) else {
        return steps;
    };
    for e in entries.flatten() {
        let name = e.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name
            .strip_prefix("global_step")
            .and_then(|r| r.strip_suffix("_universal"))
        {
            if let Ok(step) = num.parse() {
                steps.push(step);
            }
        }
    }
    steps.sort_unstable();
    steps
}

/// Remove leftover `.tmp` staging files anywhere under `dir`.
fn sweep_tmp(dir: &Path, report: &mut FsckReport) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let path = e.path();
        if path.is_dir() {
            sweep_tmp(&path, report);
        } else if ucp_storage::commit::is_tmp(&path) && std::fs::remove_file(&path).is_ok() {
            report.tmp_removed += 1;
        }
    }
}

/// Check (and with `opts.repair` fix) the `latest` markers after any
/// quarantines: a marker must reference a surviving complete step.
fn check_markers(
    base: &Path,
    good_native: &[u64],
    good_universal: &[u64],
    opts: &FsckOptions,
    report: &mut FsckReport,
) -> Result<()> {
    if let Some(step) = layout::read_latest(base) {
        if !good_native.contains(&step) {
            report.problems.push(FsckProblem {
                path: "latest".into(),
                detail: format!(
                    "marker references global_step{step}, which is not a complete step"
                ),
            });
            if opts.repair {
                if let Some(&newest) = good_native.last() {
                    layout::write_latest(base, newest)?;
                    report
                        .markers_repaired
                        .push(format!("latest -> global_step{newest}"));
                } else {
                    std::fs::remove_file(base.join("latest"))?;
                    report
                        .markers_repaired
                        .push("latest removed (no complete step)".into());
                }
            }
        }
    }
    if let Some(step) = layout::read_latest_universal(base) {
        if !good_universal.contains(&step) {
            report.problems.push(FsckProblem {
                path: "latest_universal".into(),
                detail: format!(
                    "marker references global_step{step}_universal, which is not complete"
                ),
            });
            if opts.repair {
                if let Some(&newest) = good_universal.last() {
                    layout::write_latest_universal(base, newest)?;
                    report
                        .markers_repaired
                        .push(format!("latest_universal -> global_step{newest}_universal"));
                } else {
                    std::fs::remove_file(base.join("latest_universal"))?;
                    report
                        .markers_repaired
                        .push("latest_universal removed (no complete step)".into());
                }
            }
        }
    }
    Ok(())
}

/// Validate the run journal. Complete-but-unparseable lines are
/// corruption and reported as problems; a torn tail (no final newline)
/// is expected crash debris — the append protocol self-heals it on the
/// next write — so fsck only trims it under repair, keeping the
/// newline-terminated prefix the reader already accepts.
fn check_journal(base: &Path, opts: &FsckOptions, report: &mut FsckReport) -> Result<()> {
    let path = ucp_storage::journal::journal_path(base);
    let journal = ucp_storage::journal::read_path(&path)?;
    report.journal_records = journal.records.len();
    if journal.malformed > 0 {
        report.problems.push(FsckProblem {
            path: rel(base, &path),
            detail: format!(
                "{} malformed journal record(s) (complete lines that do not parse)",
                journal.malformed
            ),
        });
    }
    if journal.torn_tail && opts.repair {
        let file = std::fs::OpenOptions::new().write(true).open(&path)?;
        file.set_len(journal.valid_bytes)?;
        file.sync_all()?;
        report.markers_repaired.push(format!(
            "journal.jsonl truncated to {} bytes (torn tail trimmed)",
            journal.valid_bytes
        ));
    }
    Ok(())
}

/// Run fsck over the checkpoint tree at `base`.
pub fn fsck(base: &Path, opts: &FsckOptions) -> Result<FsckReport> {
    let t = ucp_telemetry::enabled().then(std::time::Instant::now);
    let mut report = FsckReport::default();
    sweep_tmp(base, &mut report);

    let mut good_native = Vec::new();
    for step in ucp_storage::retention::list_steps(base) {
        report.steps_checked.push(step);
        if check_native_step(base, step, &mut report) {
            good_native.push(step);
        } else if opts.repair {
            quarantine(base, &layout::step_dir(base, step), &mut report)?;
        }
    }

    let mut good_universal = Vec::new();
    for step in list_universal_steps(base) {
        report.universal_checked.push(step);
        if check_universal_step(base, step, &mut report) {
            good_universal.push(step);
        } else if opts.repair {
            quarantine(base, &layout::universal_dir(base, step), &mut report)?;
        }
    }

    check_markers(base, &good_native, &good_universal, opts, &mut report)?;
    check_journal(base, opts, &mut report)?;

    // Journal the verdict so `ucp status` can report when the tree was
    // last checked. Gated on repair mode: a report-only fsck must not
    // write to the tree it is inspecting.
    if opts.repair {
        ucp_storage::journal::append(
            base,
            &ucp_storage::JournalEvent::Fsck {
                problems: report.problems.len() as u64,
                quarantined: report.quarantined.len() as u64,
                repair: opts.repair,
            },
        )?;
    }

    if ucp_telemetry::enabled() {
        ucp_telemetry::count("fsck/steps_scanned", report.steps_checked.len() as u64);
        ucp_telemetry::count(
            "fsck/universal_scanned",
            report.universal_checked.len() as u64,
        );
        ucp_telemetry::count(
            "fsck/markers_repaired",
            report.markers_repaired.len() as u64,
        );
        ucp_telemetry::count("fsck/files_verified", report.files_verified as u64);
        ucp_telemetry::count("fsck/problems", report.problems.len() as u64);
        ucp_telemetry::count("fsck/quarantined", report.quarantined.len() as u64);
        ucp_telemetry::count("fsck/tmp_removed", report.tmp_removed as u64);
        if let Some(t) = t {
            ucp_telemetry::global().record_span("fsck/total", t.elapsed());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_base(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ucp_fsck_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fsck_journals_its_own_verdict() {
        let base = temp_base("verdict");
        let report = fsck(&base, &FsckOptions::default()).unwrap();
        assert!(report.clean());
        assert_eq!(report.journal_records, 0, "verdict written after reading");
        let journal = ucp_storage::journal::read(&base).unwrap();
        let fscks: Vec<_> = journal.of_kind("fsck").collect();
        assert_eq!(fscks.len(), 1);
        assert!(matches!(
            fscks[0].event,
            ucp_storage::JournalEvent::Fsck {
                problems: 0,
                quarantined: 0,
                repair: true,
            }
        ));
        // Report-only mode must not write to the tree.
        let before = std::fs::read(ucp_storage::journal::journal_path(&base)).unwrap();
        let report = fsck(&base, &FsckOptions { repair: false }).unwrap();
        assert!(report.clean());
        assert_eq!(report.journal_records, 1);
        let after = std::fs::read(ucp_storage::journal::journal_path(&base)).unwrap();
        assert_eq!(before, after);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn malformed_journal_line_is_a_problem() {
        let base = temp_base("malformed");
        std::fs::write(
            ucp_storage::journal::journal_path(&base),
            "{\"kind\":\"save_started\",\"step\":2,\"t_ms\":1}\nnot json at all\n",
        )
        .unwrap();
        let report = fsck(&base, &FsckOptions { repair: false }).unwrap();
        assert!(!report.clean());
        assert_eq!(report.journal_records, 1);
        assert!(report.problems[0].detail.contains("malformed journal"));
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn torn_journal_tail_is_trimmed_under_repair() {
        let base = temp_base("torn");
        let path = ucp_storage::journal::journal_path(&base);
        let good = "{\"kind\":\"save_started\",\"step\":2,\"t_ms\":1}\n";
        std::fs::write(&path, format!("{good}{{\"kind\":\"nat")).unwrap();
        // Report-only: the torn tail is tolerated and left in place.
        let report = fsck(&base, &FsckOptions { repair: false }).unwrap();
        assert!(report.clean(), "torn tail is crash debris, not corruption");
        assert_eq!(std::fs::read(&path).unwrap().len(), good.len() + 12);
        // Repair trims the debris back to the parseable prefix.
        let report = fsck(&base, &FsckOptions::default()).unwrap();
        assert!(report.clean());
        assert!(report
            .markers_repaired
            .iter()
            .any(|m| m.contains("torn tail trimmed")));
        let journal = ucp_storage::journal::read(&base).unwrap();
        assert!(!journal.torn_tail);
        // Prefix record + the fsck verdict appended after the trim.
        assert_eq!(journal.records.len(), 2);
        let _ = std::fs::remove_dir_all(&base);
    }
}
