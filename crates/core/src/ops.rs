//! The UCP transformation operations (paper Table 2).
//!
//! `Extract` pulls per-parameter fragments out of a rank's checkpoint,
//! `Union` consolidates fragments according to their pattern,
//! `StripPadding` removes alignment padding; `GenUcpMetadata` and `Load`
//! live in [`crate::load`]. Everything here is pure data movement — union
//! of fragments is asserted bitwise-exact by the property tests.

use ucp_model::Partition;
use ucp_parallel::FlatLayout;
use ucp_tensor::{Shape, Tensor};

use crate::pattern::{FragmentSpec, ParamPattern};
use crate::{Result, UcpError};

/// A 1-D fragment of a parameter extracted from a ZeRO chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct Fragment {
    /// Offset of this fragment within the flattened parameter.
    pub param_offset: usize,
    /// Fragment values.
    pub data: Vec<f32>,
}

/// `Extract` for flat ZeRO chunks: given the flat layout and one DP rank's
/// chunk, return `(parameter name, fragment)` pairs for every parameter
/// (partially) present in the chunk. Alignment padding never appears in a
/// fragment.
pub fn extract_flat(layout: &FlatLayout, dp_rank: usize, chunk: &[f32]) -> Vec<(String, Fragment)> {
    debug_assert_eq!(chunk.len(), layout.chunk);
    let mut out = Vec::new();
    for slot in &layout.slots {
        for frag in layout.fragments_of(slot) {
            if frag.dp_rank == dp_rank {
                out.push((
                    slot.name.clone(),
                    Fragment {
                        param_offset: frag.param_offset,
                        data: chunk[frag.chunk_offset..frag.chunk_offset + frag.len].to_vec(),
                    },
                ));
            }
        }
    }
    out
}

/// `Union` for flat fragments: reassemble the flattened parameter of
/// `total_len` real elements from fragments (any order; must tile the
/// parameter exactly).
pub fn union_flat(total_len: usize, fragments: &[Fragment]) -> Result<Vec<f32>> {
    let mut out = vec![0.0f32; total_len];
    let mut covered = 0usize;
    let mut sorted: Vec<&Fragment> = fragments.iter().collect();
    sorted.sort_by_key(|f| f.param_offset);
    for f in sorted {
        if f.param_offset != covered {
            return Err(UcpError::Inconsistent(format!(
                "flat union gap: expected offset {covered}, got {}",
                f.param_offset
            )));
        }
        let end = f.param_offset + f.data.len();
        if end > total_len {
            return Err(UcpError::Inconsistent(format!(
                "flat union overflow: fragment ends at {end}, parameter has {total_len}"
            )));
        }
        out[f.param_offset..end].copy_from_slice(&f.data);
        covered = end;
    }
    if covered != total_len {
        return Err(UcpError::Inconsistent(format!(
            "flat union incomplete: covered {covered} of {total_len}"
        )));
    }
    Ok(out)
}

/// `Union` across tensor-parallel shards, dispatched on the parameter
/// pattern (the `Switch` of the paper's Algorithm 1).
///
/// `verify_replicas` additionally checks that `replicated_params` copies
/// are bitwise identical (a cheap corruption/misconfiguration tripwire).
pub fn union_tp(
    pattern: &ParamPattern,
    shards: &[Tensor],
    verify_replicas: bool,
) -> Result<Tensor> {
    if shards.is_empty() {
        return Err(UcpError::Inconsistent("union of zero shards".into()));
    }
    match pattern {
        ParamPattern::Unique => {
            if shards.len() != 1 {
                return Err(UcpError::Inconsistent(format!(
                    "unique_params with {} shards",
                    shards.len()
                )));
            }
            Ok(shards[0].clone())
        }
        ParamPattern::Replicated => {
            if verify_replicas {
                for (i, s) in shards.iter().enumerate().skip(1) {
                    if !s.bitwise_eq(&shards[0]) {
                        return Err(UcpError::Inconsistent(format!(
                            "replicated_params copies diverge (rank 0 vs rank {i})"
                        )));
                    }
                }
            }
            Ok(shards[0].clone())
        }
        ParamPattern::ToAverage => {
            let shape = shards[0].shape().clone();
            let mut acc = vec![0.0f64; shape.num_elements()];
            for s in shards {
                if s.shape() != &shape {
                    return Err(UcpError::Inconsistent(
                        "params_to_average shape mismatch".into(),
                    ));
                }
                for (a, v) in acc.iter_mut().zip(s.as_slice()) {
                    *a += f64::from(*v);
                }
            }
            let n = shards.len() as f64;
            let data: Vec<f32> = acc.into_iter().map(|v| (v / n) as f32).collect();
            Ok(Tensor::from_vec(data, shape).map_err(UcpError::Tensor)?)
        }
        ParamPattern::Fragment(spec) => {
            let partition = match spec {
                FragmentSpec::Dim { dim } => Partition::Shard { dim: *dim },
                FragmentSpec::PaddedDim { dim, multiple } => Partition::PaddedShard {
                    dim: *dim,
                    multiple: *multiple,
                },
                FragmentSpec::Grouped { dim, sections } => Partition::Grouped {
                    dim: *dim,
                    sections: sections.clone(),
                },
                FragmentSpec::Flat1D => {
                    return Err(UcpError::Inconsistent(
                        "flat fragments must go through union_flat".into(),
                    ))
                }
            };
            Ok(partition.unshard(shards))
        }
    }
}

/// `StripPadding`: remove trailing padding so the tensor matches its true
/// shape (narrow every dimension to the target extent).
pub fn strip_padding(t: &Tensor, true_shape: &Shape) -> Result<Tensor> {
    if t.shape().rank() != true_shape.rank() {
        return Err(UcpError::Inconsistent(format!(
            "strip_padding rank mismatch: {} vs {}",
            t.shape(),
            true_shape
        )));
    }
    let mut out = t.clone();
    for (dim, &target) in true_shape.dims().iter().enumerate() {
        if out.shape().dims()[dim] != target {
            out = out.strip_dim(dim, target).map_err(UcpError::Tensor)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ucp_tensor::DetRng;

    #[test]
    fn extract_union_flat_roundtrip() {
        // Two params (7 + 3 elements), alignment 1, dp 4 (chunk 3).
        let layout = FlatLayout::build(
            &[
                ("a".to_string(), Shape::new([7])),
                ("b".to_string(), Shape::new([3])),
            ],
            1,
            4,
        );
        let flat: Vec<f32> = (0..layout.total_len).map(|i| i as f32).collect();
        let mut frags_a = Vec::new();
        let mut frags_b = Vec::new();
        for dp in 0..4 {
            let r = layout.rank_range(dp);
            for (name, frag) in extract_flat(&layout, dp, &flat[r]) {
                match name.as_str() {
                    "a" => frags_a.push(frag),
                    "b" => frags_b.push(frag),
                    _ => unreachable!(),
                }
            }
        }
        assert_eq!(union_flat(7, &frags_a).unwrap(), &flat[0..7]);
        assert_eq!(union_flat(3, &frags_b).unwrap(), &flat[7..10]);
    }

    #[test]
    fn union_flat_detects_gaps_and_overlaps() {
        let f = |off: usize, len: usize| Fragment {
            param_offset: off,
            data: vec![0.0; len],
        };
        assert!(union_flat(6, &[f(0, 3), f(3, 3)]).is_ok());
        assert!(union_flat(6, &[f(0, 3), f(4, 2)]).is_err(), "gap");
        assert!(union_flat(6, &[f(0, 4), f(3, 3)]).is_err(), "overlap");
        assert!(union_flat(6, &[f(0, 3)]).is_err(), "incomplete");
        assert!(union_flat(6, &[f(0, 3), f(3, 4)]).is_err(), "overflow");
    }

    #[test]
    fn union_unique_requires_single_shard() {
        let t = Tensor::zeros([2]);
        assert!(union_tp(&ParamPattern::Unique, std::slice::from_ref(&t), false).is_ok());
        assert!(union_tp(&ParamPattern::Unique, &[t.clone(), t], false).is_err());
    }

    #[test]
    fn union_replicated_verification() {
        let a = Tensor::full([3], 1.0);
        let mut b = a.clone();
        assert!(union_tp(&ParamPattern::Replicated, &[a.clone(), b.clone()], true).is_ok());
        b.as_mut_slice()[1] = 2.0;
        assert!(union_tp(&ParamPattern::Replicated, &[a.clone(), b.clone()], true).is_err());
        // Without verification the first copy wins silently.
        let out = union_tp(&ParamPattern::Replicated, &[a.clone(), b], false).unwrap();
        assert!(out.bitwise_eq(&a));
    }

    #[test]
    fn union_to_average_means() {
        let a = Tensor::from_vec(vec![1.0, 3.0], [2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], [2]).unwrap();
        let out = union_tp(&ParamPattern::ToAverage, &[a, b], false).unwrap();
        assert_eq!(out.as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn union_fragment_dim_concatenates() {
        let rng = DetRng::new(1);
        let full = Tensor::randn([4, 6], 1.0, &rng.derive("w"));
        let shards = full.chunk(1, 2).unwrap();
        let pattern = ParamPattern::Fragment(FragmentSpec::Dim { dim: 1 });
        let out = union_tp(&pattern, &shards, false).unwrap();
        assert!(out.bitwise_eq(&full));
    }

    #[test]
    fn union_fragment_grouped_reassembles_gqa() {
        // QKV of GQA: sections [8, 4, 4] rows at TP=2; per-rank shards are
        // [4 q-rows; 2 k-rows; 2 v-rows].
        let rng = DetRng::new(2);
        let full = Tensor::randn([16, 5], 1.0, &rng.derive("qkv"));
        let partition = Partition::Grouped {
            dim: 0,
            sections: vec![8, 4, 4],
        };
        let shards: Vec<Tensor> = (0..2).map(|r| partition.shard(&full, 2, r)).collect();
        assert_eq!(shards[0].shape().dims(), &[8, 5]);
        let pattern = ParamPattern::Fragment(FragmentSpec::Grouped {
            dim: 0,
            sections: vec![8, 4, 4],
        });
        let out = union_tp(&pattern, &shards, false).unwrap();
        assert!(out.bitwise_eq(&full));
    }

    #[test]
    fn flat_fragments_rejected_by_union_tp() {
        let t = Tensor::zeros([2]);
        assert!(union_tp(&ParamPattern::Fragment(FragmentSpec::Flat1D), &[t], false).is_err());
    }

    #[test]
    fn strip_padding_multi_dim() {
        let t = Tensor::zeros([6, 8]);
        let out = strip_padding(&t, &Shape::new([5, 8])).unwrap();
        assert_eq!(out.shape().dims(), &[5, 8]);
        let out = strip_padding(&t, &Shape::new([5, 7])).unwrap();
        assert_eq!(out.shape().dims(), &[5, 7]);
        assert!(strip_padding(&t, &Shape::new([5])).is_err());
        assert!(strip_padding(&t, &Shape::new([7, 8])).is_err(), "growing");
    }

    proptest! {
        /// Extract → union over arbitrary layouts reproduces every
        /// parameter bitwise (the T2 invariant of DESIGN.md).
        #[test]
        fn prop_flat_roundtrip(
            sizes in prop::collection::vec(1usize..40, 1..8),
            alignment in 1usize..9,
            dp in 1usize..7,
        ) {
            let params: Vec<(String, Shape)> = sizes
                .iter()
                .enumerate()
                .map(|(i, s)| (format!("p{i}"), Shape::new([*s])))
                .collect();
            let layout = FlatLayout::build(&params, alignment, dp);
            // Fill real elements with recognizable values, padding with NaN
            // poison: padding must never leak into fragments.
            let mut flat = vec![f32::NAN; layout.total_len];
            for slot in &layout.slots {
                for k in 0..slot.len {
                    flat[slot.offset + k] = (slot.offset + k) as f32;
                }
            }
            let mut per_param: std::collections::HashMap<String, Vec<Fragment>> =
                Default::default();
            for rank in 0..dp {
                let r = layout.rank_range(rank);
                for (name, frag) in extract_flat(&layout, rank, &flat[r]) {
                    per_param.entry(name).or_default().push(frag);
                }
            }
            for slot in &layout.slots {
                let frags = per_param.get(&slot.name).expect("every param extracted");
                let rebuilt = union_flat(slot.len, frags).unwrap();
                for (k, v) in rebuilt.iter().enumerate() {
                    prop_assert_eq!(*v, (slot.offset + k) as f32);
                }
            }
        }

        /// TP shard → union reproduces tensors bitwise for every partition
        /// kind and degree.
        #[test]
        fn prop_tp_roundtrip(
            rows_per_rank in 1usize..5,
            cols in 1usize..6,
            tp in 1usize..5,
            dim0 in proptest::bool::ANY,
            seed in 0u64..1000,
        ) {
            let rows = rows_per_rank * tp;
            let (r, c) = if dim0 { (rows, cols) } else { (cols, rows) };
            let dim = if dim0 { 0 } else { 1 };
            let full = Tensor::randn([r, c], 1.0, &DetRng::new(seed));
            let partition = Partition::Shard { dim };
            let shards: Vec<Tensor> =
                (0..tp).map(|k| partition.shard(&full, tp, k)).collect();
            let pattern = if tp == 1 {
                ParamPattern::Unique
            } else {
                ParamPattern::Fragment(FragmentSpec::Dim { dim })
            };
            let out = union_tp(&pattern, &shards, false).unwrap();
            prop_assert!(out.bitwise_eq(&full));
        }

        /// Grouped (variable-section) shard → union round-trips for random
        /// section structures.
        #[test]
        fn prop_grouped_roundtrip(
            section_units in prop::collection::vec(1usize..4, 1..4),
            tp in 1usize..4,
            cols in 1usize..4,
            seed in 0u64..1000,
        ) {
            let sections: Vec<usize> = section_units.iter().map(|u| u * tp).collect();
            let total: usize = sections.iter().sum();
            let full = Tensor::randn([total, cols], 1.0, &DetRng::new(seed));
            let partition = Partition::Grouped { dim: 0, sections: sections.clone() };
            let shards: Vec<Tensor> =
                (0..tp).map(|k| partition.shard(&full, tp, k)).collect();
            let pattern = if tp == 1 {
                ParamPattern::Unique
            } else {
                ParamPattern::Fragment(FragmentSpec::Grouped { dim: 0, sections })
            };
            let out = union_tp(&pattern, &shards, false).unwrap();
            prop_assert!(out.bitwise_eq(&full));
        }

        /// Pad → strip is the identity.
        #[test]
        fn prop_pad_strip_identity(
            r in 1usize..6,
            c in 1usize..6,
            pad_r in 0usize..4,
            pad_c in 0usize..4,
            seed in 0u64..1000,
        ) {
            let t = Tensor::randn([r, c], 1.0, &DetRng::new(seed));
            let padded = t.pad_dim(0, r + pad_r).unwrap().pad_dim(1, c + pad_c).unwrap();
            let back = strip_padding(&padded, &Shape::new([r, c])).unwrap();
            prop_assert!(back.bitwise_eq(&t));
        }
    }
}
