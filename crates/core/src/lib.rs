//! Universal Checkpointing (UCP): the paper's core contribution.
//!
//! UCP decouples distributed checkpoints from the parallelism strategy and
//! hardware configuration that produced them. The key idea (§3.1) is to
//! pick the optimal representation per phase of the checkpoint life cycle:
//! *distributed* for saving (each rank persists only what it owns — zero
//! added training cost) and *consolidated* for loading (per-parameter
//! **atom checkpoints** that any target strategy can slice).
//!
//! The pieces, mapped to the paper:
//!
//! - [`pattern`] — Table 1's parameter patterns (`unique_params`,
//!   `replicated_params`, `fragment_params`, `params_to_average`) plus the
//!   Fig. 5 sub-patterns (QKV-with-GQA variable sections, 3-D MoE shards,
//!   flat ZeRO ranges).
//! - [`language`] — the UCP specification language: declarative name-glob →
//!   pattern rules with a builder API, and automatic derivation of a spec
//!   from a model's parameter inventory.
//! - [`ops`] — Table 2's transformation operations: `Extract`, `Union`,
//!   `StripPadding`, `GenUcpMetadata`, `Load`.
//! - [`checkpoint`] — the native distributed checkpoint schema (what
//!   training writes; DeepSpeed layout conventions).
//! - [`manifest`] — the universal checkpoint manifest (training state +
//!   atom index).
//! - [`convert`] — Algorithm 1: parallel extract → pattern-dispatched union
//!   → strip padding → atom files.
//! - [`load`] — target-side metadata generation and atom loading for an
//!   arbitrary new parallelism configuration.
//! - [`adapter`] — cross-framework sources (a PyTorch-Lightning-style
//!   consolidated checkpoint flavor) converted through the same pipeline.

pub mod adapter;
pub mod assemble;
pub mod atom_cache;
pub mod checkpoint;
pub mod convert;
pub mod fsck;
pub mod language;
pub mod load;
pub mod manifest;
pub mod memory;
pub mod ops;
pub mod pattern;
pub mod util;

pub use assemble::{build_manifest, write_atom_file, StageAssembler, StageAtoms};
pub use atom_cache::AtomCache;
pub use checkpoint::{CommonState, OptimShard};
pub use convert::{convert_to_universal, ConvertOptions, ConvertStats};
pub use fsck::{fsck, FsckOptions, FsckProblem, FsckReport};
pub use language::{UcpSpec, UcpSpecBuilder};
pub use load::{
    gen_ucp_metadata, load_universal, load_with_plan, load_with_plan_device, load_with_plan_opts,
    load_with_plan_workers, LoadOptions, LoadPlan, LoadSession, RankState,
};
pub use manifest::{AtomMeta, UcpManifest};
pub use memory::{HotShard, MemoryCheckpoint};
pub use pattern::{FragmentSpec, ParamPattern};

/// UCP errors.
#[derive(Debug)]
pub enum UcpError {
    /// Storage layer failure (I/O, corruption).
    Storage(ucp_storage::StorageError),
    /// Tensor-shape failure during reassembly.
    Tensor(ucp_tensor::TensorError),
    /// Metadata inconsistency (missing files, mismatched headers).
    Inconsistent(String),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl From<ucp_storage::StorageError> for UcpError {
    fn from(e: ucp_storage::StorageError) -> UcpError {
        UcpError::Storage(e)
    }
}

impl From<ucp_tensor::TensorError> for UcpError {
    fn from(e: ucp_tensor::TensorError) -> UcpError {
        UcpError::Tensor(e)
    }
}

impl From<serde_json::Error> for UcpError {
    fn from(e: serde_json::Error) -> UcpError {
        UcpError::Json(e)
    }
}

impl From<std::io::Error> for UcpError {
    fn from(e: std::io::Error) -> UcpError {
        UcpError::Storage(ucp_storage::StorageError::Io(e))
    }
}

impl std::fmt::Display for UcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UcpError::Storage(e) => write!(f, "storage: {e}"),
            UcpError::Tensor(e) => write!(f, "tensor: {e}"),
            UcpError::Inconsistent(msg) => write!(f, "inconsistent checkpoint: {msg}"),
            UcpError::Json(e) => write!(f, "metadata json: {e}"),
        }
    }
}

impl std::error::Error for UcpError {}

/// Result alias for UCP operations.
pub type Result<T> = std::result::Result<T, UcpError>;
