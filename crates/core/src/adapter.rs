//! Cross-framework checkpoint adapters.
//!
//! The paper's UCP implementation can ingest checkpoints written by other
//! training frameworks (HuggingFace accelerate, PyTorch Lightning with a
//! DeepSpeed backend). The mechanism is an adapter: anything that can map
//! its source format onto the atom representation plugs into the same
//! target-side `GenUcpMetadata`/`Load` machinery unchanged.
//!
//! [`LitSimAdapter`] implements the mechanism for a deliberately different
//! checkpoint flavor — "litsim", a Lightning-style *consolidated*
//! single-file checkpoint (`model.<name>` / `optim.<name>.exp_avg` /
//! `optim.<name>.exp_avg_sq` keys, no sharding) — proving that a foreign
//! layout converts into UCP and resumes under any parallelism.

use std::path::Path;

use serde::{Deserialize, Serialize};
use ucp_model::{param_specs, ModelConfig};
use ucp_storage::layout::{self, AtomFile};
use ucp_storage::Container;
use ucp_tensor::Tensor;

use crate::manifest::{AtomMeta, UcpManifest};
use crate::pattern::ParamPattern;
use crate::{Result, UcpError};

/// An adapter that converts a foreign checkpoint into the universal format.
pub trait SourceAdapter {
    /// Framework name (reports, manifests).
    fn framework(&self) -> &'static str;

    /// Convert the checkpoint at `src` into a universal checkpoint under
    /// `base/global_step<step>_universal`, returning the manifest.
    fn convert(&self, src: &Path, base: &Path, step: u64) -> Result<UcpManifest>;
}

#[derive(Serialize, Deserialize)]
struct LitSimHeader {
    framework: String,
    iteration: u64,
    seed: u64,
    data_cursor: u64,
    adam_step: u64,
    model: ModelConfig,
}

/// Write a litsim-flavor consolidated checkpoint (testing/demo producer —
/// plays the role of "another framework" emitting its own format).
///
/// `states` maps parameter name → `(fp32, exp_avg, exp_avg_sq)` full
/// tensors.
#[allow(clippy::too_many_arguments)]
pub fn save_litsim_checkpoint(
    path: &Path,
    model: &ModelConfig,
    iteration: u64,
    seed: u64,
    data_cursor: u64,
    adam_step: u64,
    states: &[(String, Tensor, Tensor, Tensor)],
) -> Result<()> {
    let header = serde_json::to_string(&LitSimHeader {
        framework: "litsim".into(),
        iteration,
        seed,
        data_cursor,
        adam_step,
        model: model.clone(),
    })?;
    let mut c = Container::new(header);
    for (name, fp32, m, v) in states {
        c.push(format!("model.{name}"), fp32.clone());
        c.push(format!("optim.{name}.exp_avg"), m.clone());
        c.push(format!("optim.{name}.exp_avg_sq"), v.clone());
    }
    c.write_file(path)?;
    Ok(())
}

/// Adapter for litsim consolidated checkpoints.
#[derive(Debug, Default)]
pub struct LitSimAdapter;

impl SourceAdapter for LitSimAdapter {
    fn framework(&self) -> &'static str {
        "litsim"
    }

    fn convert(&self, src: &Path, base: &Path, step: u64) -> Result<UcpManifest> {
        let c = Container::read_file(src)?;
        let header: LitSimHeader = serde_json::from_str(&c.header)?;
        if header.framework != "litsim" {
            return Err(UcpError::Inconsistent(format!(
                "not a litsim checkpoint (framework = {})",
                header.framework
            )));
        }
        let universal = layout::universal_dir(base, step);
        std::fs::create_dir_all(&universal)?;

        let mut atoms = Vec::new();
        for spec in param_specs(&header.model) {
            let keys = [
                (AtomFile::Fp32, format!("model.{}", spec.name)),
                (AtomFile::ExpAvg, format!("optim.{}.exp_avg", spec.name)),
                (
                    AtomFile::ExpAvgSq,
                    format!("optim.{}.exp_avg_sq", spec.name),
                ),
            ];
            // A consolidated checkpoint's tensors are already atoms: each
            // parameter is uniquely owned — the `unique_params` pattern.
            let pattern = ParamPattern::Unique;
            for (file, key) in &keys {
                let t = c.get(key).ok_or_else(|| {
                    UcpError::Inconsistent(format!("litsim checkpoint missing key {key}"))
                })?;
                if t.shape() != &spec.shape {
                    return Err(UcpError::Inconsistent(format!(
                        "litsim {key}: shape {} != spec {}",
                        t.shape(),
                        spec.shape
                    )));
                }
                let meta_json = serde_json::to_string(&AtomMeta {
                    name: spec.name.clone(),
                    shape: spec.shape.clone(),
                    pattern: pattern.clone(),
                })?;
                let mut atom = Container::new(meta_json);
                atom.push(file.state_key(), t.clone());
                atom.write_file(&layout::atom_path(&universal, &spec.name, *file))?;
            }
            atoms.push(AtomMeta {
                name: spec.name.clone(),
                shape: spec.shape.clone(),
                pattern,
            });
        }

        atoms.sort_by(|a, b| a.name.cmp(&b.name));
        let manifest = UcpManifest {
            version: UcpManifest::VERSION,
            iteration: header.iteration,
            seed: header.seed,
            data_cursor: header.data_cursor,
            adam_step: header.adam_step,
            model: header.model,
            source_label: format!("{}(consolidated)", self.framework()),
            params: atoms,
        };
        manifest.save(&universal)?;
        layout::write_latest_universal(base, step)?;
        Ok(manifest)
    }
}

#[derive(Serialize, Deserialize)]
struct HfSimIndex {
    framework: String,
    iteration: u64,
    seed: u64,
    data_cursor: u64,
    adam_step: u64,
    model: ModelConfig,
    /// Parameter name → model shard file holding its fp32 weights.
    weight_map: std::collections::BTreeMap<String, String>,
}

/// Write an hfsim-flavor checkpoint: HuggingFace-accelerate style, with
/// model weights sharded across several files by a size budget plus a JSON
/// index (`model.index.json` analogue), and optimizer moments in one
/// separate file. A deliberately different structure from both our native
/// layout and litsim, to exercise the adapter mechanism a second way.
#[allow(clippy::too_many_arguments)]
pub fn save_hfsim_checkpoint(
    dir: &Path,
    model: &ModelConfig,
    iteration: u64,
    seed: u64,
    data_cursor: u64,
    adam_step: u64,
    states: &[(String, Tensor, Tensor, Tensor)],
    shard_budget_bytes: usize,
) -> Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut weight_map = std::collections::BTreeMap::new();
    let mut shards: Vec<Container> = Vec::new();
    let mut current = Container::new("{}");
    let mut current_bytes = 0usize;
    for (name, fp32, _, _) in states {
        let bytes = fp32.num_elements() * 4;
        if current_bytes > 0 && current_bytes + bytes > shard_budget_bytes {
            shards.push(std::mem::replace(&mut current, Container::new("{}")));
            current_bytes = 0;
        }
        current.push(name.clone(), fp32.clone());
        current_bytes += bytes;
        weight_map.insert(name.clone(), String::new());
    }
    shards.push(current);
    let total = shards.len();
    for (i, shard) in shards.iter().enumerate() {
        let file = format!("model-{:05}-of-{total:05}.ucpt", i + 1);
        for section in &shard.sections {
            weight_map.insert(section.name.clone(), file.clone());
        }
        shard.write_file(&dir.join(&file))?;
    }
    let mut optim = Container::new("{}");
    for (name, _, m, v) in states {
        optim.push(format!("{name}.exp_avg"), m.clone());
        optim.push(format!("{name}.exp_avg_sq"), v.clone());
    }
    optim.write_file(&dir.join("optimizer.ucpt"))?;
    let index = HfSimIndex {
        framework: "hfsim".into(),
        iteration,
        seed,
        data_cursor,
        adam_step,
        model: model.clone(),
        weight_map,
    };
    std::fs::write(
        dir.join("model.index.json"),
        serde_json::to_string_pretty(&index)?,
    )?;
    Ok(())
}

/// Adapter for hfsim sharded-with-index checkpoints.
#[derive(Debug, Default)]
pub struct HfSimAdapter;

impl SourceAdapter for HfSimAdapter {
    fn framework(&self) -> &'static str {
        "hfsim"
    }

    fn convert(&self, src: &Path, base: &Path, step: u64) -> Result<UcpManifest> {
        let index: HfSimIndex =
            serde_json::from_str(&std::fs::read_to_string(src.join("model.index.json"))?)?;
        if index.framework != "hfsim" {
            return Err(UcpError::Inconsistent(format!(
                "not an hfsim checkpoint (framework = {})",
                index.framework
            )));
        }
        let universal = layout::universal_dir(base, step);
        std::fs::create_dir_all(&universal)?;

        // Open each model shard file once.
        let mut shard_cache: std::collections::BTreeMap<String, Container> = Default::default();
        let optim = Container::read_file(&src.join("optimizer.ucpt"))?;

        let mut atoms = Vec::new();
        for spec in param_specs(&index.model) {
            let file = index.weight_map.get(&spec.name).ok_or_else(|| {
                UcpError::Inconsistent(format!("hfsim index missing {}", spec.name))
            })?;
            if !shard_cache.contains_key(file) {
                shard_cache.insert(file.clone(), Container::read_file(&src.join(file))?);
            }
            let weights = shard_cache[file]
                .get(&spec.name)
                .ok_or_else(|| UcpError::Inconsistent(format!("{file} lacks {}", spec.name)))?;
            let pattern = ParamPattern::Unique;
            let entries = [
                (AtomFile::Fp32, weights.clone()),
                (
                    AtomFile::ExpAvg,
                    optim
                        .get(&format!("{}.exp_avg", spec.name))
                        .ok_or_else(|| {
                            UcpError::Inconsistent(format!("optimizer lacks {}", spec.name))
                        })?
                        .clone(),
                ),
                (
                    AtomFile::ExpAvgSq,
                    optim
                        .get(&format!("{}.exp_avg_sq", spec.name))
                        .ok_or_else(|| {
                            UcpError::Inconsistent(format!("optimizer lacks {}", spec.name))
                        })?
                        .clone(),
                ),
            ];
            for (file, tensor) in entries {
                if tensor.shape() != &spec.shape {
                    return Err(UcpError::Inconsistent(format!(
                        "hfsim {}: shape {} != spec {}",
                        spec.name,
                        tensor.shape(),
                        spec.shape
                    )));
                }
                let meta_json = serde_json::to_string(&AtomMeta {
                    name: spec.name.clone(),
                    shape: spec.shape.clone(),
                    pattern: pattern.clone(),
                })?;
                let mut atom = Container::new(meta_json);
                atom.push(file.state_key(), tensor);
                atom.write_file(&layout::atom_path(&universal, &spec.name, file))?;
            }
            atoms.push(AtomMeta {
                name: spec.name.clone(),
                shape: spec.shape.clone(),
                pattern,
            });
        }

        atoms.sort_by(|a, b| a.name.cmp(&b.name));
        let manifest = UcpManifest {
            version: UcpManifest::VERSION,
            iteration: index.iteration,
            seed: index.seed,
            data_cursor: index.data_cursor,
            adam_step: index.adam_step,
            model: index.model,
            source_label: format!("{}(sharded+index)", self.framework()),
            params: atoms,
        };
        manifest.save(&universal)?;
        layout::write_latest_universal(base, step)?;
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{gen_ucp_metadata, load_with_plan, DEFAULT_ALIGNMENT};
    use ucp_parallel::{ParallelConfig, ZeroStage};
    use ucp_tensor::DetRng;

    fn fabricate_states(model: &ModelConfig, seed: u64) -> Vec<(String, Tensor, Tensor, Tensor)> {
        let rng = DetRng::new(seed);
        param_specs(model)
            .into_iter()
            .map(|s| {
                let fp32 = s.materialize_full(&rng);
                let m = Tensor::randn(s.shape.clone(), 0.01, &rng.derive(&format!("m:{}", s.name)));
                let v = Tensor::randn(
                    s.shape.clone(),
                    0.001,
                    &rng.derive(&format!("v:{}", s.name)),
                );
                (s.name, fp32, m, v)
            })
            .collect()
    }

    #[test]
    fn litsim_converts_and_loads_under_tp2() {
        let base = std::env::temp_dir().join("ucp_litsim_test");
        std::fs::remove_dir_all(&base).ok();
        std::fs::create_dir_all(&base).unwrap();
        let model = ModelConfig::gpt3_tiny();
        let states = fabricate_states(&model, 9);
        let ckpt = base.join("litsim.ckpt");
        save_litsim_checkpoint(&ckpt, &model, 500, 9, 128_000, 500, &states).unwrap();

        let manifest = LitSimAdapter.convert(&ckpt, &base, 500).unwrap();
        assert_eq!(manifest.iteration, 500);
        assert_eq!(manifest.params.len(), states.len());
        assert!(manifest.source_label.contains("litsim"));

        // Load as a TP=2, DP=2 target and verify a sharded parameter.
        let target = ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1);
        let universal = layout::universal_dir(&base, 500);
        for rank in 0..target.world_size() {
            let plan = gen_ucp_metadata(&manifest, &target, rank, DEFAULT_ALIGNMENT).unwrap();
            let state = load_with_plan(&universal, &plan).unwrap();
            assert_eq!(state.fp32.len(), plan.layout.chunk);
            // The lm_head shard must equal the top/bottom half of the
            // original.
            let coord = target.coord(rank);
            let (name, orig, _, _) = states.iter().find(|(n, ..)| n == "lm_head.weight").unwrap();
            let shard = state
                .model_params
                .iter()
                .find(|(n, _)| n.as_ref() == name.as_str())
                .map(|(_, t)| t)
                .unwrap();
            let expected = orig.chunk(0, 2).unwrap()[coord.tp].clone();
            assert!(shard.bitwise_eq(&expected));
        }
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn wrong_framework_rejected() {
        let base = std::env::temp_dir().join("ucp_litsim_bad");
        std::fs::remove_dir_all(&base).ok();
        std::fs::create_dir_all(&base).unwrap();
        let path = base.join("bad.ckpt");
        let c = Container::new(
            r#"{"framework": "other", "iteration": 0, "seed": 0, "data_cursor": 0, "adam_step": 0, "model": null}"#,
        );
        c.write_file(&path).unwrap();
        assert!(LitSimAdapter.convert(&path, &base, 1).is_err());
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn hfsim_shards_by_budget_and_converts() {
        let base = std::env::temp_dir().join("ucp_hfsim_test");
        std::fs::remove_dir_all(&base).ok();
        std::fs::create_dir_all(&base).unwrap();
        let model = ModelConfig::gpt3_tiny();
        let states = fabricate_states(&model, 10);
        let src = base.join("hf");
        // Small budget → several model shard files.
        save_hfsim_checkpoint(&src, &model, 77, 10, 616, 77, &states, 64 * 1024).unwrap();
        let shard_files = std::fs::read_dir(&src)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with("model-"))
            .count();
        assert!(shard_files > 1, "budget should split the model");

        let manifest = HfSimAdapter.convert(&src, &base, 77).unwrap();
        assert_eq!(manifest.iteration, 77);
        assert!(manifest.source_label.contains("hfsim"));
        assert_eq!(manifest.params.len(), states.len());

        // Atoms hold the exact original tensors.
        let universal = layout::universal_dir(&base, 77);
        let (name, orig, m, _) = &states[3];
        let atom =
            Container::read_file(&layout::atom_path(&universal, name, AtomFile::Fp32)).unwrap();
        assert!(atom.get("fp32").unwrap().bitwise_eq(orig));
        let atom =
            Container::read_file(&layout::atom_path(&universal, name, AtomFile::ExpAvg)).unwrap();
        assert!(atom.get("exp_avg").unwrap().bitwise_eq(m));
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn hfsim_missing_index_entry_detected() {
        let base = std::env::temp_dir().join("ucp_hfsim_bad");
        std::fs::remove_dir_all(&base).ok();
        let model = ModelConfig::gpt3_tiny();
        let states = fabricate_states(&model, 11);
        let src = base.join("hf");
        save_hfsim_checkpoint(&src, &model, 1, 11, 8, 1, &states, usize::MAX).unwrap();
        // Drop a key from the index.
        let index_path = src.join("model.index.json");
        let text = std::fs::read_to_string(&index_path).unwrap();
        let broken = text.replacen("lm_head.weight", "lm_head.weightX", 1);
        std::fs::write(&index_path, broken).unwrap();
        let err = HfSimAdapter.convert(&src, &base, 1).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
        std::fs::remove_dir_all(&base).ok();
    }
}
