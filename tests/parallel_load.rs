//! Parallel atom loading must produce exactly the serial loader's state
//! (the loading-efficiency extension the paper lists as future work).

use ucp_repro::core::convert::{convert_to_universal, ConvertOptions};
use ucp_repro::core::load::{
    gen_ucp_metadata, load_with_plan, load_with_plan_workers, DEFAULT_ALIGNMENT,
};
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::storage::layout;
use ucp_repro::trainer::{train_run, ResumeMode, TrainConfig, TrainPlan};

#[test]
fn parallel_load_matches_serial_bitwise() {
    let dir = std::env::temp_dir().join("ucp_it_parload");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = TrainConfig::quick(
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(2, 2, 2, 1, ZeroStage::Zero1),
        71,
    );
    train_run(&TrainPlan {
        config: cfg,
        until_iteration: 2,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    let (manifest, _) = convert_to_universal(&dir, 2, &ConvertOptions::default()).unwrap();
    let universal = layout::universal_dir(&dir, 2);

    let target = ParallelConfig::new(1, 2, 2, 1, ZeroStage::Zero2);
    for rank in 0..target.world_size() {
        let plan = gen_ucp_metadata(&manifest, &target, rank, DEFAULT_ALIGNMENT).unwrap();
        let serial = load_with_plan(&universal, &plan).unwrap();
        for workers in [2usize, 8] {
            let parallel = load_with_plan_workers(&universal, &plan, workers).unwrap();
            assert_eq!(parallel.fp32, serial.fp32, "rank {rank} fp32");
            assert_eq!(parallel.exp_avg, serial.exp_avg, "rank {rank} exp_avg");
            assert_eq!(
                parallel.exp_avg_sq, serial.exp_avg_sq,
                "rank {rank} exp_avg_sq"
            );
            assert_eq!(parallel.model_params.len(), serial.model_params.len());
            for ((na, ta), (nb, tb)) in parallel.model_params.iter().zip(&serial.model_params) {
                assert_eq!(na, nb);
                assert!(ta.bitwise_eq(tb), "rank {rank} param {na}");
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
