//! Integration test for the paper's Algorithm 1: the complete Extract →
//! PatternMatch → Union → StripPadding workflow over a real distributed
//! checkpoint, asserted bitwise.
//!
//! The consolidation path is pure data movement, so the reconstructed
//! atoms must equal the mathematically-expected tensors exactly — no
//! tolerance.

use ucp_repro::core::checkpoint::load_optim_states;
use ucp_repro::core::convert::{convert_to_universal, ConvertOptions};
use ucp_repro::core::language::UcpSpec;
use ucp_repro::core::load::{gen_ucp_metadata, load_with_plan, DEFAULT_ALIGNMENT};
use ucp_repro::core::manifest::UcpManifest;
use ucp_repro::core::ops::{extract_flat, union_flat, union_tp};
use ucp_repro::core::pattern::ParamPattern;
use ucp_repro::model::{param_specs, ModelConfig, Partition};
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::storage::layout;
use ucp_repro::storage::Container;
use ucp_repro::tensor::Tensor;
use ucp_repro::trainer::{train_run, ResumeMode, TrainConfig, TrainPlan};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_it_alg1_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Train briefly and checkpoint, returning the checkpoint dir and step.
fn make_checkpoint(parallel: ParallelConfig, name: &str) -> (std::path::PathBuf, u64) {
    let dir = scratch(name);
    let cfg = TrainConfig::quick(ModelConfig::gpt3_tiny(), parallel, 99);
    train_run(&TrainPlan {
        config: cfg,
        until_iteration: 3,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(3),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    (dir, 3)
}

#[test]
fn manual_algorithm1_equals_convert_to_universal() {
    // Run the Extract/Union/Strip workflow by hand for one parameter and
    // compare against what convert_to_universal wrote.
    let parallel = ParallelConfig::new(2, 2, 2, 1, ZeroStage::Zero1);
    let (dir, step) = make_checkpoint(parallel, "manual");
    convert_to_universal(&dir, step, &ConvertOptions::default()).unwrap();

    let model = ModelConfig::gpt3_tiny();
    let spec = UcpSpec::from_model(&model, parallel.tp, &[]);
    let step_dir = layout::step_dir(&dir, step);
    let universal = layout::universal_dir(&dir, step);

    // The fused QKV of layer 0 lives on pipeline stage 0 and is
    // TP-sharded with the grouped sub-pattern.
    let target_param = "layers.0.attention.query_key_value.weight";
    let pattern = spec.pattern_of(target_param).unwrap();
    assert_eq!(pattern.paper_name(), "fragment_params");

    // Extract per (tp, dp), flat-union per tp, then tp-union.
    let mut tp_shards = Vec::new();
    for tp in 0..parallel.tp {
        let mut fragments = Vec::new();
        let mut slot_info = None;
        for dp in 0..parallel.dp {
            let (_, shard) = load_optim_states(&step_dir, dp, tp, 0).unwrap();
            for (name, frag) in extract_flat(&shard.layout, dp, &shard.fp32) {
                if name == target_param {
                    fragments.push(frag);
                }
            }
            slot_info = shard.layout.slot(target_param).cloned();
        }
        let slot = slot_info.expect("qkv lives on stage 0");
        let flat = union_flat(slot.len, &fragments).unwrap();
        tp_shards.push(Tensor::from_vec(flat, slot.shape.clone()).unwrap());
    }
    let manual_atom = union_tp(pattern, &tp_shards, true).unwrap();

    // Compare with the machine-written atom file.
    let atom_file = layout::atom_path(&universal, target_param, layout::AtomFile::Fp32);
    let c = Container::read_file(&atom_file).unwrap();
    let written = c.get("fp32").unwrap();
    assert!(
        manual_atom.bitwise_eq(written),
        "manual Algorithm 1 result differs from convert_to_universal"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn atoms_cover_every_parameter_with_correct_shapes() {
    let parallel = ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1);
    let (dir, step) = make_checkpoint(parallel, "coverage");
    let (manifest, stats) = convert_to_universal(&dir, step, &ConvertOptions::default()).unwrap();

    let model = ModelConfig::gpt3_tiny();
    let specs = param_specs(&model);
    assert_eq!(manifest.params.len(), specs.len());
    assert_eq!(stats.atoms_written, specs.len(), "one atom per parameter");
    let universal = layout::universal_dir(&dir, step);
    for s in &specs {
        let atom = manifest.atom(&s.name).expect("atom for every param");
        assert_eq!(atom.shape, s.shape, "{}", s.name);
        for file in layout::AtomFile::ALL {
            let path = layout::atom_path(&universal, &s.name, file);
            assert!(path.is_file(), "missing {}", path.display());
            let c = Container::read_file(&path).unwrap();
            let t = c.get(file.state_key()).unwrap();
            assert_eq!(t.shape(), &s.shape, "{} {}", s.name, file.state_key());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reshard_roundtrip_is_bitwise_exact() {
    // Pure data movement invariant: convert source → load target ranks →
    // reassemble the full fp32 state from the target shards → must equal
    // the atoms bitwise.
    let source_parallel = ParallelConfig::new(2, 2, 2, 1, ZeroStage::Zero1);
    let (dir, step) = make_checkpoint(source_parallel, "roundtrip");
    let (manifest, _) = convert_to_universal(&dir, step, &ConvertOptions::default()).unwrap();
    let universal = layout::universal_dir(&dir, step);
    let model = manifest.model.clone();
    let specs = param_specs(&model);

    for target in [
        ParallelConfig::new(1, 1, 4, 1, ZeroStage::Zero2),
        ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1),
        ParallelConfig::new(1, 4, 1, 1, ZeroStage::Zero1),
        ParallelConfig::new(4, 1, 1, 1, ZeroStage::Zero3),
    ] {
        // Load every rank's state and regroup the model_params per (pp) by
        // tp-rank order, then unshard.
        for pp in 0..target.pp {
            let mut per_param_shards: std::collections::BTreeMap<String, Vec<Tensor>> =
                Default::default();
            for tp in 0..target.tp {
                let rank = target.rank_of(ucp_repro::parallel::RankCoord {
                    dp: 0,
                    pp,
                    sp: 0,
                    tp,
                });
                let plan = gen_ucp_metadata(&manifest, &target, rank, DEFAULT_ALIGNMENT).unwrap();
                let state = load_with_plan(&universal, &plan).unwrap();
                for (name, t) in state.model_params {
                    per_param_shards
                        .entry(name.to_string())
                        .or_default()
                        .push(t);
                }
            }
            for (name, shards) in per_param_shards {
                let spec = specs.iter().find(|s| s.name == name).unwrap();
                let rebuilt = if target.tp == 1 {
                    shards[0].clone()
                } else {
                    match &spec.partition {
                        Partition::Replicated => shards[0].clone(),
                        p => p.unshard(&shards),
                    }
                };
                let atom_file = layout::atom_path(&universal, &name, layout::AtomFile::Fp32);
                let atom = Container::read_file(&atom_file).unwrap();
                assert!(
                    rebuilt.bitwise_eq(atom.get("fp32").unwrap()),
                    "{name} under target {} differs from its atom",
                    target.label()
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_records_training_state() {
    let parallel = ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero2);
    let (dir, step) = make_checkpoint(parallel, "manifest");
    let (manifest, _) = convert_to_universal(&dir, step, &ConvertOptions::default()).unwrap();
    assert_eq!(manifest.iteration, step);
    assert_eq!(manifest.seed, 99);
    assert_eq!(manifest.adam_step, step);
    assert_eq!(manifest.source_label, parallel.label());
    // Manifest reloads identically from disk.
    let reloaded = UcpManifest::load(&layout::universal_dir(&dir, step)).unwrap();
    assert_eq!(reloaded, manifest);
    // ToAverage never appears without trainer opt-in.
    assert!(reloaded
        .params
        .iter()
        .all(|a| a.pattern != ParamPattern::ToAverage));
    std::fs::remove_dir_all(&dir).ok();
}
