//! The `params_to_average` pattern (Table 1): replicated parameters whose
//! copies were updated *independently* across ranks (as happens to norm
//! parameters under Megatron-style sequence parallelism) consolidate to
//! their elementwise mean.
//!
//! Our deterministic trainer never desynchronizes replicas on its own, so
//! this test reproduces the divergence the way it occurs in the wild:
//! after training, the saved TP replicas of a norm parameter are perturbed
//! apart, the checkpoint marks the parameter `params_to_average`, and the
//! conversion must (a) average it, (b) not trip the replica-equality
//! verifier, and (c) resume training with the averaged value.

use ucp_repro::core::checkpoint::{
    load_model_states, load_optim_states, save_model_states, save_optim_states,
};
use ucp_repro::core::convert::{convert_to_universal, ConvertOptions};
use ucp_repro::core::pattern::ParamPattern;
use ucp_repro::model::{ModelConfig, ParamStore};
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::storage::layout;
use ucp_repro::storage::Container;
use ucp_repro::trainer::{train_run, ResumeMode, TrainConfig, TrainPlan};

const NORM_PARAM: &str = "layers.0.input_layernorm.weight";

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_it_avg_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Desynchronize `NORM_PARAM` across the two TP replicas of a saved
/// checkpoint by ±`delta`, and mark it `params_to_average` in every header.
fn desync_checkpoint(dir: &std::path::Path, step: u64, parallel: ParallelConfig, delta: f32) {
    let step_dir = layout::step_dir(dir, step);
    for tp in 0..parallel.tp {
        let sign = if tp == 0 { 1.0 } else { -1.0 };
        for dp in 0..parallel.dp {
            let (mut common, mut shard) = load_optim_states(&step_dir, dp, tp, 0).unwrap();
            let slot = shard.layout.slot(NORM_PARAM).unwrap().clone();
            for frag in shard.layout.fragments_of(&slot) {
                if frag.dp_rank == dp {
                    for v in &mut shard.fp32[frag.chunk_offset..frag.chunk_offset + frag.len] {
                        *v += sign * delta;
                    }
                }
            }
            common.params_to_average = vec![NORM_PARAM.to_string()];
            save_optim_states(&step_dir, &common, tp, 0, &shard).unwrap();
        }
        // Keep the model-states header in sync (it is the metadata source
        // for conversion).
        let (mut common, params) = load_model_states(&step_dir, tp, 0).unwrap();
        common.params_to_average = vec![NORM_PARAM.to_string()];
        let mut store = ParamStore::new();
        for (name, t) in params {
            store.insert(name, t);
        }
        save_model_states(&step_dir, &common, tp, 0, &store).unwrap();
    }
}

#[test]
fn independently_updated_replicas_consolidate_to_mean() {
    let parallel = ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1);
    let dir = scratch("mean");
    let cfg = TrainConfig::quick(ModelConfig::gpt3_tiny(), parallel, 13);
    train_run(&TrainPlan {
        config: cfg,
        until_iteration: 2,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();

    // Record the pre-desync value, then push replicas ±0.25 apart.
    let step_dir = layout::step_dir(&dir, 2);
    let (_, shard0) = load_optim_states(&step_dir, 0, 0, 0).unwrap();
    let slot = shard0.layout.slot(NORM_PARAM).unwrap().clone();
    let before = shard0.layout.unflatten_one(
        &{
            let mut full = Vec::new();
            for dp in 0..parallel.dp {
                full.extend_from_slice(&load_optim_states(&step_dir, dp, 0, 0).unwrap().1.fp32);
            }
            full
        },
        &slot,
    );
    desync_checkpoint(&dir, 2, parallel, 0.25);

    // Conversion with replica verification ON must not trip: the
    // parameter is declared params_to_average, not replicated.
    let (manifest, _) = convert_to_universal(
        &dir,
        2,
        &ConvertOptions {
            verify_replicas: true,
            ..ConvertOptions::default()
        },
    )
    .unwrap();
    let atom_meta = manifest.atom(NORM_PARAM).unwrap();
    assert_eq!(atom_meta.pattern, ParamPattern::ToAverage);

    // (+0.25) and (−0.25) average back to the original value.
    let universal = layout::universal_dir(&dir, 2);
    let atom = Container::read_file(&layout::atom_path(
        &universal,
        NORM_PARAM,
        layout::AtomFile::Fp32,
    ))
    .unwrap();
    let averaged = atom.get("fp32").unwrap();
    let diff = averaged.max_abs_diff(&before).unwrap();
    assert!(diff < 1e-6, "average deviates from midpoint by {diff}");

    // Other replicated parameters stay replicated and verified.
    let other = manifest.atom("layers.1.input_layernorm.weight").unwrap();
    assert_eq!(other.pattern, ParamPattern::Replicated);

    // The averaged checkpoint resumes under a new strategy.
    let resumed = train_run(&TrainPlan {
        config: TrainConfig::quick(
            ModelConfig::gpt3_tiny(),
            ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
            13,
        ),
        until_iteration: 4,
        resume: ResumeMode::Universal {
            dir: dir.clone(),
            step: 2,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap();
    assert!(resumed.losses.iter().all(|(_, l)| l.is_finite()));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn desynced_replicas_without_declaration_are_caught() {
    // Same divergence, but the checkpoint does NOT declare the parameter
    // params_to_average: the verifier must flag the inconsistency instead
    // of silently picking one replica.
    let parallel = ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1);
    let dir = scratch("caught");
    let cfg = TrainConfig::quick(ModelConfig::gpt3_tiny(), parallel, 14);
    train_run(&TrainPlan {
        config: cfg,
        until_iteration: 2,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    // Perturb only tp rank 1's replica, leaving params_to_average empty.
    let step_dir = layout::step_dir(&dir, 2);
    let (common, mut shard) = load_optim_states(&step_dir, 0, 1, 0).unwrap();
    let slot = shard.layout.slot(NORM_PARAM).unwrap().clone();
    for frag in shard.layout.fragments_of(&slot) {
        for v in &mut shard.fp32[frag.chunk_offset..frag.chunk_offset + frag.len] {
            *v += 0.5;
        }
    }
    save_optim_states(&step_dir, &common, 1, 0, &shard).unwrap();

    let err = convert_to_universal(
        &dir,
        2,
        &ConvertOptions {
            verify_replicas: true,
            ..ConvertOptions::default()
        },
    )
    .unwrap_err();
    assert!(
        err.to_string().contains("diverge"),
        "expected replica-divergence error, got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
