//! End-to-end observability: a TP=2 × PP=2 training run with overlapped
//! checkpointing, followed by convert and universal load, must produce a
//! Chrome trace with one pid per rank and every event category, survive a
//! lossless JSON round-trip, and yield a sane busy/wait summary.

use std::sync::OnceLock;

use ucp_repro::core::convert::{convert_to_universal, ConvertOptions};
use ucp_repro::core::load::{gen_ucp_metadata, load_with_plan, DEFAULT_ALIGNMENT};
use ucp_repro::core::manifest::UcpManifest;
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::storage::layout;
use ucp_repro::telemetry::json::Json;
use ucp_repro::telemetry::trace::{self, EventKind, TraceSession, DRIVER_PID};
use ucp_repro::trainer::{train_run_overlapped, ResumeMode, TrainConfig, TrainPlan};

const WORLD: usize = 4; // TP=2 × PP=2

/// Record the shared workload exactly once per test process. Every test
/// derives from this one recording: the tracer is process-global, so a
/// single synchronized recording avoids cross-test interleaving.
fn recorded_trace() -> &'static str {
    static TRACE: OnceLock<String> = OnceLock::new();
    TRACE.get_or_init(|| {
        let dir = std::env::temp_dir().join("ucp_it_trace_observability");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();

        let parallel = ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1);
        let plan = TrainPlan {
            config: TrainConfig::quick(ModelConfig::gpt3_tiny(), parallel, 7),
            until_iteration: 4,
            resume: ResumeMode::Fresh,
            checkpoint_every: Some(2),
            checkpoint_dir: Some(dir.clone()),
        };

        let tracer = trace::global();
        tracer.start();
        trace::register_thread(DRIVER_PID, "driver");
        train_run_overlapped(&plan).unwrap();
        let opts = ConvertOptions {
            workers: 2,
            spill_fragments: false,
            verify_replicas: false,
            spec_override: None,
        };
        convert_to_universal(&dir, 4, &opts).unwrap();
        let universal = layout::universal_dir(&dir, 4);
        let manifest = UcpManifest::load(&universal).unwrap();
        for rank in 0..parallel.world_size() {
            let plan = gen_ucp_metadata(&manifest, &parallel, rank, DEFAULT_ALIGNMENT).unwrap();
            load_with_plan(&universal, &plan).unwrap();
        }
        tracer.set_enabled(false);
        let text = tracer.take_session().to_chrome_json();
        std::fs::remove_dir_all(&dir).ok();
        text
    })
}

#[test]
fn one_pid_per_rank_and_all_categories() {
    let session = TraceSession::from_chrome_json(recorded_trace()).unwrap();
    let ranks = session.ranks();
    assert_eq!(
        ranks.iter().copied().collect::<Vec<_>>(),
        (0..WORLD as u64).collect::<Vec<_>>(),
        "one pid per cluster rank"
    );
    let mut cats = std::collections::BTreeSet::new();
    for track in &session.tracks {
        for ev in &track.events {
            match &ev.kind {
                EventKind::Begin { cat, .. } | EventKind::Mark { cat, .. } => {
                    cats.insert(cat.as_str());
                }
                EventKind::Collective { .. } => {
                    cats.insert("collective");
                }
                EventKind::Edge { .. } => {
                    cats.insert("comm");
                }
                EventKind::End { .. } => {}
            }
        }
    }
    for required in ["collective", "compute", "checkpoint", "convert", "load"] {
        assert!(cats.contains(required), "missing category {required}");
    }
}

#[test]
fn chrome_invariants_hold_in_raw_json() {
    // Validate the exported document independently of the parser: walk
    // the raw traceEvents and check per-(pid, tid) B/E balance.
    let doc = Json::parse(recorded_trace()).unwrap();
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let mut depth: std::collections::BTreeMap<(u64, u64), i64> = Default::default();
    let mut durations = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap();
        let pid = ev.get("pid").and_then(Json::as_u64).unwrap();
        let tid = ev.get("tid").and_then(Json::as_u64).unwrap();
        match ph {
            "B" => {
                *depth.entry((pid, tid)).or_default() += 1;
                durations += 1;
            }
            "E" => {
                let d = depth.entry((pid, tid)).or_default();
                *d -= 1;
                assert!(*d >= 0, "E without B on pid {pid} tid {tid}");
            }
            "M" | "i" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(durations > 0, "trace has duration events");
    for ((pid, tid), d) in depth {
        assert_eq!(d, 0, "unbalanced B/E on pid {pid} tid {tid}");
    }
}

#[test]
fn collective_timestamps_are_ordered() {
    let session = TraceSession::from_chrome_json(recorded_trace()).unwrap();
    let mut seen = 0usize;
    for track in &session.tracks {
        for ev in &track.events {
            if let EventKind::Collective {
                ready_ns, exit_ns, ..
            } = &ev.kind
            {
                assert!(ev.ts_ns <= *ready_ns, "enter must not follow ready");
                assert!(ready_ns <= exit_ns, "ready must not follow exit");
                seen += 1;
            }
        }
    }
    assert!(seen > 0, "run recorded collectives");
}

#[test]
fn chrome_roundtrip_is_lossless() {
    let text = recorded_trace();
    let session = TraceSession::from_chrome_json(text).unwrap();
    assert_eq!(session.to_chrome_json(), text, "export is a fixed point");
}

#[test]
fn summary_reports_busy_wait_and_stragglers() {
    let session = TraceSession::from_chrome_json(recorded_trace()).unwrap();
    let summary = session.summary();
    let rank_rows: Vec<_> = summary
        .ranks
        .iter()
        .filter(|r| r.pid < DRIVER_PID)
        .collect();
    assert_eq!(rank_rows.len(), WORLD);
    for r in &rank_rows {
        assert!(r.wall_ns > 0);
        assert!(r.busy_ns <= r.wall_ns);
        assert!(r.wait_ns <= r.collective_ns);
        assert!(r.busy_pct() > 0.0 && r.busy_pct() <= 100.0);
        assert!(r.collectives > 0, "every rank joined collectives");
    }
    // Straggler ranking covers every rank, sorted by ascending wait (the
    // rank that waits least is the one the others wait on).
    assert_eq!(summary.stragglers.len(), WORLD);
    assert!(summary.stragglers.windows(2).all(|w| w[0].1 <= w[1].1));
    assert!(!summary.ops.is_empty(), "per-op wait table populated");
    assert!(!summary.critical_path.is_empty(), "critical path extracted");
    // The summary itself serializes.
    let json = Json::parse(&summary.to_json()).unwrap();
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some("ucp-trace-summary-v1")
    );
}
