//! `fsck` verification and repair: corrupt or incomplete step trees are
//! quarantined to `*.corrupt`, stale `.tmp` staging files are swept, and
//! dangling `latest` markers are repointed at the newest surviving step.

use ucp_repro::core::convert::{convert_to_universal, ConvertOptions};
use ucp_repro::core::{fsck, FsckOptions};
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::storage::layout;
use ucp_repro::trainer::{train_run, ResumeMode, TrainConfig, TrainPlan};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_it_fsck_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two complete native steps (2 and 4); `latest` points at 4.
fn make_tree(name: &str) -> std::path::PathBuf {
    let dir = scratch(name);
    let cfg = TrainConfig::quick(
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
        55,
    );
    train_run(&TrainPlan {
        config: cfg,
        until_iteration: 4,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    dir
}

fn corrupt(path: &std::path::Path) {
    let mut bytes = std::fs::read(path).unwrap();
    let idx = bytes.len() * 3 / 4;
    bytes[idx] ^= 0x40;
    std::fs::write(path, bytes).unwrap();
}

#[test]
fn clean_tree_passes() {
    let dir = make_tree("clean");
    convert_to_universal(&dir, 4, &ConvertOptions::default()).unwrap();
    let report = fsck(&dir, &FsckOptions::default()).unwrap();
    assert!(report.clean(), "{:?}", report.problems);
    assert_eq!(report.steps_checked, vec![2, 4]);
    assert_eq!(report.universal_checked, vec![4]);
    assert!(report.files_verified > 0);
    assert!(report.quarantined.is_empty());
    assert!(report.markers_repaired.is_empty());
    assert_eq!(report.tmp_removed, 0);
    // JSON form is well-formed and carries the counters.
    let json = report.to_json();
    assert!(json.contains("\"files_verified\""), "{json}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_step_is_quarantined_and_marker_repointed() {
    let dir = make_tree("corrupt_native");
    corrupt(&layout::optim_states_path(
        &layout::step_dir(&dir, 4),
        1,
        0,
        0,
    ));
    let report = fsck(&dir, &FsckOptions::default()).unwrap();
    assert!(!report.clean());
    assert_eq!(report.quarantined, vec!["global_step4.corrupt".to_string()]);
    assert!(dir.join("global_step4.corrupt").is_dir());
    assert!(!layout::step_dir(&dir, 4).exists());
    // `latest` pointed at the now-quarantined step; fsck repoints it at
    // the newest surviving complete step.
    assert_eq!(
        report.markers_repaired,
        vec!["latest -> global_step2".to_string()]
    );
    assert_eq!(layout::read_latest(&dir), Some(2));
    // The repaired tree resumes, and a second pass is clean.
    train_run(&TrainPlan {
        config: TrainConfig::quick(
            ModelConfig::gpt3_tiny(),
            ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
            55,
        ),
        until_iteration: 4,
        resume: ResumeMode::Native {
            dir: dir.clone(),
            step: 2,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap();
    let second = fsck(&dir, &FsckOptions::default()).unwrap();
    assert!(second.clean(), "{:?}", second.problems);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_file_counts_as_incomplete_step() {
    let dir = make_tree("missing_file");
    std::fs::remove_file(layout::optim_states_path(
        &layout::step_dir(&dir, 2),
        0,
        0,
        0,
    ))
    .unwrap();
    let report = fsck(&dir, &FsckOptions::default()).unwrap();
    assert!(!report.clean());
    assert_eq!(report.quarantined, vec!["global_step2.corrupt".to_string()]);
    // Step 4 survives and `latest` still points at it: nothing to repair.
    assert!(report.markers_repaired.is_empty());
    assert_eq!(layout::read_latest(&dir), Some(4));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_repair_reports_without_touching_disk() {
    let dir = make_tree("no_repair");
    corrupt(&layout::model_states_path(&layout::step_dir(&dir, 4), 0, 0));
    let report = fsck(&dir, &FsckOptions { repair: false }).unwrap();
    assert!(!report.clean());
    assert!(report.quarantined.is_empty());
    assert!(report.markers_repaired.is_empty());
    assert!(layout::step_dir(&dir, 4).is_dir());
    assert_eq!(layout::read_latest(&dir), Some(4));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_tmp_files_are_swept() {
    let dir = make_tree("tmp_sweep");
    // Simulate crash debris from interrupted commits at several levels.
    let step_dir = layout::step_dir(&dir, 4);
    std::fs::write(step_dir.join("model_states.ucpt.tmp"), b"partial").unwrap();
    std::fs::write(dir.join("latest.tmp"), b"glo").unwrap();
    let report = fsck(&dir, &FsckOptions::default()).unwrap();
    assert_eq!(report.tmp_removed, 2);
    // Debris alone is not corruption: the committed files are intact.
    assert!(report.clean(), "{:?}", report.problems);
    assert!(!step_dir.join("model_states.ucpt.tmp").exists());
    assert!(!dir.join("latest.tmp").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_universal_step_is_quarantined() {
    let dir = make_tree("corrupt_universal");
    convert_to_universal(&dir, 4, &ConvertOptions::default()).unwrap();
    corrupt(&layout::atom_path(
        &layout::universal_dir(&dir, 4),
        "final_layernorm.weight",
        layout::AtomFile::Fp32,
    ));
    let report = fsck(&dir, &FsckOptions::default()).unwrap();
    assert!(!report.clean());
    assert_eq!(
        report.quarantined,
        vec!["global_step4_universal.corrupt".to_string()]
    );
    // No complete universal step remains, so the marker is removed
    // rather than left dangling.
    assert!(report
        .markers_repaired
        .iter()
        .any(|m| m.contains("latest_universal removed")));
    assert_eq!(layout::read_latest_universal(&dir), None);
    // The native tree is untouched; re-converting just works.
    assert_eq!(layout::read_latest(&dir), Some(4));
    convert_to_universal(&dir, 4, &ConvertOptions::default()).unwrap();
    assert!(fsck(&dir, &FsckOptions::default()).unwrap().clean());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantined_trees_are_never_deleted_by_prune() {
    let dir = make_tree("prune_interop");
    corrupt(&layout::optim_states_path(
        &layout::step_dir(&dir, 2),
        0,
        0,
        0,
    ));
    fsck(&dir, &FsckOptions::default()).unwrap();
    assert!(dir.join("global_step2.corrupt").is_dir());
    let report = ucp_repro::storage::retention::prune(
        &dir,
        &ucp_repro::storage::RetentionPolicy {
            keep_last: 1,
            keep_every: None,
        },
    )
    .unwrap();
    assert!(dir.join("global_step2.corrupt").is_dir());
    assert!(report.bytes_quarantined > 0);
    std::fs::remove_dir_all(&dir).ok();
}
