//! Tied embeddings (GPT-2/BLOOM style) under pipeline parallelism: the
//! word-embedding weight doubles as the LM head, lives on *both* the first
//! and last pipeline stages, and its gradients are summed across the
//! shared-embedding group — a parameter that belongs to two stages at
//! once, which the checkpoint machinery must treat as one logical atom.

use ucp_repro::core::checkpoint::load_optim_states;
use ucp_repro::core::convert::{convert_to_universal, ConvertOptions};
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::storage::layout;
use ucp_repro::trainer::{train_run, ResumeMode, TrainConfig, TrainPlan};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_it_tied_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn tied_model_has_no_lm_head_parameter() {
    let model = ModelConfig::gpt3_tiny_tied();
    let specs = ucp_repro::model::param_specs(&model);
    assert!(!specs.iter().any(|s| s.name == "lm_head.weight"));
    assert!(specs
        .iter()
        .any(|s| s.name == "embedding.word_embeddings.weight"
            && s.role == ucp_repro::model::LayerRole::SharedEmbedding));
    // The tied model has fewer parameters than the untied one.
    assert!(model.num_parameters() < ModelConfig::gpt3_tiny().num_parameters());
}

#[test]
fn tied_losses_match_across_pipeline_depths() {
    // pp=1 accumulates embedding+head grads in one buffer; pp>1 sums them
    // across the shared-embedding group. Same math, same losses.
    let losses = |pp: usize, dp: usize| -> Vec<f64> {
        let cfg = TrainConfig::quick(
            ModelConfig::gpt3_tiny_tied(),
            ParallelConfig::new(1, pp, dp, 1, ZeroStage::Zero1),
            111,
        );
        train_run(&TrainPlan::simple(cfg, 4))
            .unwrap()
            .losses
            .into_iter()
            .map(|(_, l)| l)
            .collect()
    };
    let base = losses(1, 1);
    for (pp, dp) in [(2usize, 1usize), (4, 1), (2, 2)] {
        let other = losses(pp, dp);
        for (i, (a, b)) in base.iter().zip(&other).enumerate() {
            assert!(
                (a - b).abs() < 2e-3,
                "pp={pp} dp={dp} diverges at iteration {}: {a} vs {b}",
                i + 1
            );
        }
    }
}

#[test]
fn tied_replicas_stay_in_sync_across_stages() {
    // After training with pp=2, the checkpoint's stage-0 and stage-1 copies
    // of the tied weight must be bitwise identical (the grad sync works).
    let dir = scratch("sync");
    let cfg = TrainConfig::quick(
        ModelConfig::gpt3_tiny_tied(),
        ParallelConfig::new(1, 2, 1, 1, ZeroStage::Zero1),
        112,
    );
    train_run(&TrainPlan {
        config: cfg,
        until_iteration: 3,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(3),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    let step_dir = layout::step_dir(&dir, 3);
    let extract_tied = |pp: usize| -> Vec<f32> {
        let (_, shard) = load_optim_states(&step_dir, 0, 0, pp).unwrap();
        let slot = shard
            .layout
            .slot("embedding.word_embeddings.weight")
            .expect("tied weight on both stages")
            .clone();
        shard.fp32[slot.offset..slot.offset + slot.len].to_vec()
    };
    let first = extract_tied(0);
    let last = extract_tied(1);
    assert_eq!(first, last, "tied replicas drifted apart");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tied_checkpoint_converts_once_and_reshards() {
    let dir = scratch("reshard");
    let model = ModelConfig::gpt3_tiny_tied();
    let src = TrainConfig::quick(
        model.clone(),
        ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1),
        113,
    );
    let baseline = train_run(&TrainPlan::simple(src.clone(), 6)).unwrap();
    train_run(&TrainPlan {
        config: src,
        until_iteration: 3,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(3),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    let (manifest, _) = convert_to_universal(&dir, 3, &ConvertOptions::default()).unwrap();
    // One logical atom despite living on two stages; no lm_head atom.
    assert_eq!(
        manifest
            .params
            .iter()
            .filter(|a| a.name == "embedding.word_embeddings.weight")
            .count(),
        1
    );
    assert!(manifest.atom("lm_head.weight").is_none());

    // Resume under different pipeline depths, including pp=1 (single copy)
    // and pp=4 (two copies again).
    for target in [
        ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero2),
        ParallelConfig::new(1, 4, 1, 1, ZeroStage::Zero1),
    ] {
        let tgt = TrainConfig::quick(model.clone(), target, 113);
        let resumed = train_run(&TrainPlan {
            config: tgt,
            until_iteration: 6,
            resume: ResumeMode::Universal {
                dir: dir.clone(),
                step: 3,
            },
            checkpoint_every: None,
            checkpoint_dir: None,
        })
        .unwrap();
        for ((ia, la), (ib, lb)) in baseline.losses[3..].iter().zip(&resumed.losses) {
            assert_eq!(ia, ib);
            assert!(
                (la - lb).abs() < 2e-3,
                "{}: iteration {ia}, baseline {la} vs resumed {lb}",
                target.label()
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
