//! Determinism and parallel-layout equivalence of the training substrate.
//!
//! These properties are what make the correctness experiments meaningful:
//! the paper attributes its ±0.02 loss band to GPU nondeterminism; our
//! substrate removes that noise, so any loss divergence after a UCP resume
//! would be a real bug, not noise.

use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::trainer::{train_run, TrainConfig, TrainPlan};

fn losses(model: ModelConfig, parallel: ParallelConfig, seed: u64, iters: u64) -> Vec<f64> {
    let cfg = TrainConfig::quick(model, parallel, seed);
    train_run(&TrainPlan::simple(cfg, iters))
        .unwrap()
        .losses
        .into_iter()
        .map(|(_, l)| l)
        .collect()
}

#[test]
fn repeated_runs_are_bitwise_identical() {
    let a = losses(ModelConfig::gpt3_tiny(), ParallelConfig::single(), 5, 6);
    let b = losses(ModelConfig::gpt3_tiny(), ParallelConfig::single(), 5, 6);
    assert_eq!(a, b, "same seed must give bitwise-identical losses");
}

#[test]
fn different_seeds_differ() {
    let a = losses(ModelConfig::gpt3_tiny(), ParallelConfig::single(), 5, 3);
    let b = losses(ModelConfig::gpt3_tiny(), ParallelConfig::single(), 6, 3);
    assert_ne!(a, b);
}

#[test]
fn all_parallel_layouts_agree_on_the_loss_curve() {
    let baseline = losses(ModelConfig::gpt3_tiny(), ParallelConfig::single(), 9, 5);
    let layouts = [
        ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1), // TP only
        ParallelConfig::new(1, 2, 1, 1, ZeroStage::Zero1), // PP only
        ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1), // DP only
        ParallelConfig::new(1, 1, 1, 2, ZeroStage::Zero1), // SP only
        ParallelConfig::new(1, 1, 4, 1, ZeroStage::Zero2), // ZeRO-2
        ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero3), // ZeRO-3
        ParallelConfig::new(2, 2, 2, 1, ZeroStage::Zero1), // 3-D
        ParallelConfig::new(2, 1, 2, 2, ZeroStage::Zero1), // TP + DP + SP
    ];
    for layout in layouts {
        let curve = losses(ModelConfig::gpt3_tiny(), layout, 9, 5);
        for (it, (a, b)) in baseline.iter().zip(&curve).enumerate() {
            assert!(
                (a - b).abs() < 2e-3,
                "layout {} diverges at iteration {}: {a} vs {b}",
                layout.label(),
                it + 1
            );
        }
    }
}

#[test]
fn moe_layouts_agree() {
    let baseline = losses(ModelConfig::moe_tiny(), ParallelConfig::single(), 17, 4);
    for layout in [
        ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1),
        ParallelConfig::new(1, 2, 2, 1, ZeroStage::Zero1),
    ] {
        let curve = losses(ModelConfig::moe_tiny(), layout, 17, 4);
        for (it, (a, b)) in baseline.iter().zip(&curve).enumerate() {
            assert!(
                (a - b).abs() < 2e-3,
                "MoE layout {} diverges at iteration {}: {a} vs {b}",
                layout.label(),
                it + 1
            );
        }
    }
}

#[test]
fn gqa_llama_layouts_agree() {
    let baseline = losses(ModelConfig::llama_tiny(), ParallelConfig::single(), 23, 4);
    for layout in [
        ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1),
        ParallelConfig::new(1, 1, 1, 2, ZeroStage::Zero1),
    ] {
        let curve = losses(ModelConfig::llama_tiny(), layout, 23, 4);
        for (it, (a, b)) in baseline.iter().zip(&curve).enumerate() {
            assert!(
                (a - b).abs() < 2e-3,
                "LLaMA layout {} diverges at iteration {}: {a} vs {b}",
                layout.label(),
                it + 1
            );
        }
    }
}

#[test]
fn bloom_alibi_layouts_agree() {
    // ALiBi slopes depend on the *global* head index; TP must not change
    // the math.
    let baseline = losses(ModelConfig::bloom_tiny(), ParallelConfig::single(), 29, 3);
    let curve = losses(
        ModelConfig::bloom_tiny(),
        ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1),
        29,
        3,
    );
    for (it, (a, b)) in baseline.iter().zip(&curve).enumerate() {
        assert!(
            (a - b).abs() < 2e-3,
            "BLOOM TP2/PP2 diverges at iteration {}: {a} vs {b}",
            it + 1
        );
    }
}

#[test]
fn losses_actually_decrease() {
    for (model, seed) in [
        (ModelConfig::gpt3_tiny(), 1u64),
        (ModelConfig::llama_tiny(), 2),
        (ModelConfig::moe_tiny(), 3),
    ] {
        let curve = losses(model.clone(), ParallelConfig::single(), seed, 12);
        let early: f64 = curve[..3].iter().sum::<f64>() / 3.0;
        let late: f64 = curve[curve.len() - 3..].iter().sum::<f64>() / 3.0;
        assert!(
            late < early - 0.05,
            "{}: no learning ({early} → {late})",
            model.family
        );
    }
}
