//! Crash-replay harness for the commit protocol: kill the writer at a
//! sweep of points through save and convert, then assert the tree always
//! resumes.
//!
//! The fault layer (`storage::io::fault`) counts every buffered write and
//! every commit gate (pre-publish fsync, rename, parent-dir sync) under a
//! scoped directory. Each sweep first runs a calibration pass to count the
//! kill points of the operation, then replays the operation with an
//! injected crash at indices spread across that range. After every crash
//! the invariants the protocol promises are checked:
//!
//! - `latest` / `latest_universal` never reference an incomplete step —
//!   `fsck` finds no dangling marker to repair;
//! - resume from the newest marker always succeeds;
//! - after `fsck` quarantines partial trees, simply retrying the
//!   interrupted operation converges.

use ucp_repro::core::convert::{convert_to_universal, ConvertOptions};
use ucp_repro::core::{fsck, FsckOptions};
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::storage::io::fault;
use ucp_repro::storage::layout;
use ucp_repro::trainer::{train_run, train_run_overlapped, ResumeMode, TrainConfig, TrainPlan};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_it_crash_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config() -> TrainConfig {
    TrainConfig::quick(
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
        91,
    )
}

/// Fresh run that commits a complete checkpoint at step 2.
fn baseline(dir: &std::path::Path) {
    train_run(&TrainPlan {
        config: config(),
        until_iteration: 2,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.to_path_buf()),
    })
    .unwrap();
}

/// The segment under fault: resume from step 2 and save step 4.
fn save_segment(dir: &std::path::Path) -> Result<ucp_repro::trainer::RunResult, String> {
    train_run(&TrainPlan {
        config: config(),
        until_iteration: 4,
        resume: ResumeMode::Native {
            dir: dir.to_path_buf(),
            step: 2,
        },
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.to_path_buf()),
    })
    .map_err(|e| e.to_string())
}

/// `want` kill indices spread over `[0, total)`, ends included.
fn spread(total: u64, want: u64) -> Vec<u64> {
    assert!(total > 1, "operation exposed too few kill points: {total}");
    let want = want.min(total);
    let mut ks: Vec<u64> = (0..want)
        .map(|i| i * (total - 1) / (want - 1).max(1))
        .collect();
    ks.dedup();
    ks
}

fn copy_tree(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).unwrap();
    for e in std::fs::read_dir(src).unwrap().flatten() {
        let to = dst.join(e.file_name());
        if e.path().is_dir() {
            copy_tree(&e.path(), &to);
        } else {
            std::fs::copy(e.path(), &to).unwrap();
        }
    }
}

#[test]
fn save_crash_replay_sweeps_kill_points() {
    // Calibration: count the kill points of one save segment.
    let cal = scratch("save_cal");
    baseline(&cal);
    let total = {
        let armed = fault::arm(fault::FaultPlan::count_only(&cal));
        save_segment(&cal).unwrap();
        armed.hits()
    };
    std::fs::remove_dir_all(&cal).ok();

    let kill_points = spread(total, 12);
    assert!(
        kill_points.len() >= 10,
        "save exposed only {total} kill points"
    );
    for &k in &kill_points {
        let dir = scratch(&format!("save_k{k}"));
        baseline(&dir);
        let err = {
            let _armed = fault::arm(fault::FaultPlan::kill_at(k, &dir));
            save_segment(&dir).unwrap_err()
        };
        assert!(err.contains("injected crash"), "kill {k}: {err}");

        // fsck may quarantine the partial step-4 tree, but must find the
        // markers sound: a marker is only ever published after its step
        // is complete.
        let report = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(
            report.markers_repaired.is_empty(),
            "kill {k}: marker referenced an incomplete step: {:?}",
            report.markers_repaired
        );

        // Resume from the marker always works: old step or new step,
        // never a torn in-between.
        let latest = layout::read_latest(&dir).expect("baseline marker must survive");
        assert!(latest == 2 || latest == 4, "kill {k}: latest = {latest}");
        let resumed = train_run(&TrainPlan {
            config: config(),
            until_iteration: latest + 2,
            resume: ResumeMode::Native {
                dir: dir.clone(),
                step: latest,
            },
            checkpoint_every: None,
            checkpoint_dir: None,
        })
        .unwrap_or_else(|e| panic!("kill {k}: resume from step {latest} failed: {e}"));
        assert_eq!(resumed.start_iteration, latest);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn convert_crash_replay_sweeps_kill_points() {
    // One native checkpoint; each scenario converts a fresh copy of it.
    let base = scratch("conv_base");
    baseline(&base);
    let total = {
        let cal = scratch("conv_cal");
        copy_tree(&base, &cal);
        let armed = fault::arm(fault::FaultPlan::count_only(&cal));
        convert_to_universal(&cal, 2, &ConvertOptions::default()).unwrap();
        let hits = armed.hits();
        drop(armed);
        std::fs::remove_dir_all(&cal).ok();
        hits
    };

    let kill_points = spread(total, 12);
    assert!(
        kill_points.len() >= 10,
        "convert exposed only {total} kill points"
    );
    for &k in &kill_points {
        let dir = scratch(&format!("conv_k{k}"));
        copy_tree(&base, &dir);
        let err = {
            let _armed = fault::arm(fault::FaultPlan::kill_at(k, &dir));
            convert_to_universal(&dir, 2, &ConvertOptions::default()).unwrap_err()
        };
        assert!(
            err.to_string().contains("injected crash"),
            "kill {k}: {err}"
        );

        let report = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(
            report.markers_repaired.is_empty(),
            "kill {k}: marker referenced an incomplete universal step: {:?}",
            report.markers_repaired
        );
        // The native source is untouched by a convert crash.
        assert_eq!(layout::read_latest(&dir), Some(2), "kill {k}");

        // Either the conversion committed (marker present ⇒ complete) or
        // it can simply be retried after fsck swept the debris.
        if layout::read_latest_universal(&dir).is_none() {
            convert_to_universal(&dir, 2, &ConvertOptions::default())
                .unwrap_or_else(|e| panic!("kill {k}: retry after fsck failed: {e}"));
        }
        assert_eq!(layout::read_latest_universal(&dir), Some(2), "kill {k}");
        let resumed = train_run(&TrainPlan {
            config: config(),
            until_iteration: 4,
            resume: ResumeMode::Universal {
                dir: dir.clone(),
                step: 2,
            },
            checkpoint_every: None,
            checkpoint_dir: None,
        })
        .unwrap_or_else(|e| panic!("kill {k}: universal resume failed: {e}"));
        assert_eq!(resumed.start_iteration, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn overlapped_mid_run_kill_resumes_from_published_marker() {
    let plan = |dir: &std::path::Path| TrainPlan {
        config: config(),
        until_iteration: 6,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.to_path_buf()),
    };
    let total = {
        let cal = scratch("ovl_cal");
        let armed = fault::arm(fault::FaultPlan::count_only(&cal));
        train_run_overlapped(&plan(&cal)).unwrap();
        let hits = armed.hits();
        drop(armed);
        std::fs::remove_dir_all(&cal).ok();
        hits
    };

    for &k in &spread(total, 6) {
        let dir = scratch(&format!("ovl_k{k}"));
        let result = {
            let _armed = fault::arm(fault::FaultPlan::kill_at(k, &dir));
            train_run_overlapped(&plan(&dir))
        };
        assert!(result.is_err(), "kill {k}: run should have crashed");

        let report = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(
            report.markers_repaired.is_empty(),
            "kill {k}: overlapped run published a marker for an incomplete step: {:?}",
            report.markers_repaired
        );
        // Born-universal publish ordering: `latest` is committed before
        // `latest_universal`, so across every kill point the universal
        // marker may lag the native one but never run ahead — it can
        // never name a step whose native fragments weren't fully drained.
        let latest = layout::read_latest(&dir);
        let latest_universal = layout::read_latest_universal(&dir);
        if let Some(u) = latest_universal {
            let native = latest.unwrap_or_else(|| {
                panic!("kill {k}: latest_universal {u} published without a native latest")
            });
            assert!(
                u <= native,
                "kill {k}: latest_universal {u} ran ahead of latest {native}"
            );
        }
        match latest {
            // The marker is published per drained interval, so a mid-run
            // crash loses at most one interval — and resume works.
            Some(latest) => {
                assert!([2, 4, 6].contains(&latest), "kill {k}: latest = {latest}");
                let resumed = train_run(&TrainPlan {
                    config: config(),
                    until_iteration: latest + 2,
                    resume: ResumeMode::Native {
                        dir: dir.clone(),
                        step: latest,
                    },
                    checkpoint_every: None,
                    checkpoint_dir: None,
                })
                .unwrap_or_else(|e| panic!("kill {k}: resume from {latest} failed: {e}"));
                assert_eq!(resumed.start_iteration, latest);
            }
            // Crashed before the first drain: nothing was committed and
            // nothing claims otherwise.
            None => assert!(!dir.join("latest").exists(), "kill {k}"),
        }
        // Whatever the universal marker names was pipeline-published at
        // save time and must resume directly — reconfigured, with no
        // convert pass.
        if let Some(u) = latest_universal {
            let mut target = config();
            target.parallel = ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1);
            let resumed = train_run(&TrainPlan {
                config: target,
                until_iteration: u + 1,
                resume: ResumeMode::Universal {
                    dir: dir.clone(),
                    step: u,
                },
                checkpoint_every: None,
                checkpoint_dir: None,
            })
            .unwrap_or_else(|e| panic!("kill {k}: universal resume from {u} failed: {e}"));
            assert_eq!(resumed.start_iteration, u);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
