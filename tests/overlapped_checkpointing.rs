//! Overlapped (snapshot + background persist) checkpointing must produce
//! checkpoints byte-identical to the synchronous path while blocking
//! training for less time, and the results must convert/resume normally.

use ucp_repro::core::convert::{convert_to_universal, ConvertOptions};
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::storage::layout;
use ucp_repro::trainer::{train_run, train_run_overlapped, ResumeMode, TrainConfig, TrainPlan};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_it_overlap_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn plan(dir: &std::path::Path, seed: u64) -> TrainPlan {
    TrainPlan {
        config: TrainConfig::quick(
            ModelConfig::gpt3_tiny(),
            ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
            seed,
        ),
        until_iteration: 6,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.to_path_buf()),
    }
}

fn tree_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else {
                let rel = p.strip_prefix(dir).unwrap().to_string_lossy().into_owned();
                out.push((rel, std::fs::read(&p).unwrap()));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[test]
fn overlapped_checkpoints_are_byte_identical_to_sync() {
    let sync_dir = scratch("sync");
    let async_dir = scratch("async");
    let sync_run = train_run(&plan(&sync_dir, 61)).unwrap();
    let async_run = train_run_overlapped(&plan(&async_dir, 61)).unwrap();

    // Identical losses (checkpointing never perturbs training).
    assert_eq!(sync_run.losses, async_run.losses);

    // Identical checkpoint trees for every saved step.
    for step in [2u64, 4, 6] {
        let a = tree_bytes(&layout::step_dir(&sync_dir, step));
        let b = tree_bytes(&layout::step_dir(&async_dir, step));
        assert!(!a.is_empty());
        assert_eq!(a, b, "step {step} differs between sync and overlapped");
    }
    // The marker points at the last step.
    assert_eq!(layout::read_latest(&async_dir), Some(6));
    std::fs::remove_dir_all(&sync_dir).ok();
    std::fs::remove_dir_all(&async_dir).ok();
}

#[test]
fn overlapped_checkpoint_converts_and_resumes() {
    let dir = scratch("resume");
    train_run_overlapped(&plan(&dir, 62)).unwrap();
    convert_to_universal(&dir, 4, &ConvertOptions::default()).unwrap();
    let resumed = train_run(&TrainPlan {
        config: TrainConfig::quick(
            ModelConfig::gpt3_tiny(),
            ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1),
            62,
        ),
        until_iteration: 6,
        resume: ResumeMode::Universal {
            dir: dir.clone(),
            step: 4,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap();
    assert_eq!(resumed.start_iteration, 4);
    assert!(resumed.losses.iter().all(|(_, l)| l.is_finite()));
    std::fs::remove_dir_all(&dir).ok();
}
