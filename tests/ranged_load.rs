//! The fragment-ranged load path: byte-range reads must be
//! indistinguishable from whole-file reads (bitwise), fall back cleanly on
//! v1 containers, share bytes across DP replicas through the session atom
//! cache, and stay fsck-clean on both container versions.

use std::sync::Mutex;

use ucp_repro::core::convert::{convert_to_universal, ConvertOptions};
use ucp_repro::core::fsck::{fsck, FsckOptions};
use ucp_repro::core::load::{
    gen_ucp_metadata, load_with_plan_opts, LoadOptions, LoadSession, RankState, DEFAULT_ALIGNMENT,
};
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::storage::{layout, Container};
use ucp_repro::tensor::DType;
use ucp_repro::trainer::{train_run, ResumeMode, TrainConfig, TrainPlan};

/// The cache-accounting test reads the global telemetry recorder, so the
/// tests in this binary run one at a time.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_it_ranged_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Train, checkpoint at step 2, and convert; returns the base dir.
fn universal_checkpoint(parallel: ParallelConfig, name: &str, dtype: DType) -> std::path::PathBuf {
    let dir = scratch(name);
    let mut cfg = TrainConfig::quick(ModelConfig::gpt3_tiny(), parallel, 71);
    cfg.dtype = dtype;
    train_run(&TrainPlan {
        config: cfg,
        until_iteration: 2,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    convert_to_universal(&dir, 2, &ConvertOptions::default()).unwrap();
    dir
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_states_identical(a: &RankState, b: &RankState, ctx: &str) {
    assert_eq!(bits(&a.fp32), bits(&b.fp32), "{ctx}: fp32 chunk differs");
    assert_eq!(bits(&a.exp_avg), bits(&b.exp_avg), "{ctx}: exp_avg differs");
    assert_eq!(
        bits(&a.exp_avg_sq),
        bits(&b.exp_avg_sq),
        "{ctx}: exp_avg_sq differs"
    );
    assert_eq!(a.model_params.len(), b.model_params.len(), "{ctx}");
    for ((na, ta), (nb, tb)) in a.model_params.iter().zip(&b.model_params) {
        assert_eq!(na, nb, "{ctx}: param order differs");
        assert!(ta.bitwise_eq(tb), "{ctx}: model param {na} differs");
    }
}

/// Load every rank of `target` both ways and demand bitwise equality.
fn check_equivalence(base: &std::path::Path, target: ParallelConfig) {
    let universal = layout::universal_dir(base, 2);
    let manifest = ucp_repro::core::manifest::UcpManifest::load(&universal).unwrap();
    for rank in 0..target.world_size() {
        let plan = gen_ucp_metadata(&manifest, &target, rank, DEFAULT_ALIGNMENT).unwrap();
        let ranged = load_with_plan_opts(
            &universal,
            &plan,
            &LoadOptions {
                ranged: true,
                ..LoadOptions::with_workers(2)
            },
        )
        .unwrap();
        let full = load_with_plan_opts(
            &universal,
            &plan,
            &LoadOptions {
                ranged: false,
                ..LoadOptions::with_workers(2)
            },
        )
        .unwrap();
        let ctx = format!("target {} rank {rank}", target.label());
        assert_states_identical(&ranged, &full, &ctx);
    }
}

#[test]
fn ranged_reads_match_whole_file_reads_across_reshard_matrix() {
    let _g = serial();
    let source = ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1);
    let dir = universal_checkpoint(source, "equiv", DType::F32);
    for target in [
        ParallelConfig::new(1, 1, 1, 1, ZeroStage::Zero1),
        ParallelConfig::new(1, 1, 4, 1, ZeroStage::Zero2),
        ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1),
        ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1),
        ParallelConfig::new(4, 1, 1, 1, ZeroStage::Zero3),
        ParallelConfig::new(1, 4, 1, 1, ZeroStage::Zero1),
    ] {
        check_equivalence(&dir, target);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ranged_reads_match_under_reduced_precision_training() {
    // A bf16 training run produces the same fp32 master/optimizer atoms;
    // the ranged path must agree with the full path there too, and the
    // checkpoint must actually resume training.
    let _g = serial();
    let source = ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1);
    let dir = universal_checkpoint(source, "bf16", DType::BF16);
    check_equivalence(&dir, ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1));
    check_equivalence(&dir, ParallelConfig::new(4, 1, 1, 1, ZeroStage::Zero1));

    let mut target_cfg = TrainConfig::quick(
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero2),
        71,
    );
    target_cfg.dtype = DType::F16;
    let run = train_run(&TrainPlan {
        config: target_cfg,
        until_iteration: 4,
        resume: ResumeMode::Universal {
            dir: dir.clone(),
            step: 2,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap();
    assert!(run.losses.iter().all(|(_, l)| l.is_finite()));
    std::fs::remove_dir_all(&dir).ok();
}

/// Rewrite every `.ucpt` file under `dir` as a version-1 container
/// (whole-payload CRC, no block table), returning how many were converted.
fn downgrade_containers_to_v1(dir: &std::path::Path) -> usize {
    let mut converted = 0;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            converted += downgrade_containers_to_v1(&path);
        } else if path.extension().is_some_and(|e| e == "ucpt") {
            let c = Container::read_file(&path).unwrap();
            let mut bytes = Vec::new();
            c.write_to_v1(&mut bytes).unwrap();
            std::fs::write(&path, bytes).unwrap();
            converted += 1;
        }
    }
    converted
}

#[test]
fn v1_atoms_fall_back_to_whole_section_reads() {
    let _g = serial();
    let source = ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1);
    let dir = universal_checkpoint(source, "v1compat", DType::F32);

    // The freshly converted (v2) tree is fsck-clean.
    let report = fsck(&dir, &FsckOptions { repair: false }).unwrap();
    assert!(report.clean(), "v2 tree dirty: {:?}", report.problems);
    assert!(report.files_verified > 0);

    // Capture the expected state, then downgrade every atom to v1.
    let universal = layout::universal_dir(&dir, 2);
    let manifest = ucp_repro::core::manifest::UcpManifest::load(&universal).unwrap();
    let target = ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1);
    let before: Vec<RankState> = (0..target.world_size())
        .map(|rank| {
            let plan = gen_ucp_metadata(&manifest, &target, rank, DEFAULT_ALIGNMENT).unwrap();
            load_with_plan_opts(&universal, &plan, &LoadOptions::default()).unwrap()
        })
        .collect();
    let converted = downgrade_containers_to_v1(&universal);
    assert!(converted > 0, "test premise: some atoms to downgrade");

    // Ranged loads transparently fall back to whole-section reads on v1
    // and produce the identical state; fsck still verifies the tree.
    for (rank, expected) in before.iter().enumerate() {
        let plan = gen_ucp_metadata(&manifest, &target, rank, DEFAULT_ALIGNMENT).unwrap();
        let loaded = load_with_plan_opts(&universal, &plan, &LoadOptions::default()).unwrap();
        assert_states_identical(&loaded, expected, &format!("v1 fallback rank {rank}"));
        check_equivalence(&dir, target);
    }
    let report = fsck(&dir, &FsckOptions { repair: false }).unwrap();
    assert!(report.clean(), "v1 tree dirty: {:?}", report.problems);
    std::fs::remove_dir_all(&dir).ok();
}

/// Every fp32 atom container under `dir`, largest payload first.
fn fp32_atoms(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else if path.file_name().is_some_and(|n| n == "fp32.ucpt") {
                found.push(path);
            }
        }
    }
    found.sort_by_key(|p| std::cmp::Reverse(std::fs::metadata(p).unwrap().len()));
    found
}

#[test]
fn damaged_block_table_falls_back_to_whole_section_read() {
    let _g = serial();
    let source = ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1);
    let dir = universal_checkpoint(source, "tablefault", DType::F32);
    let universal = layout::universal_dir(&dir, 2);
    let manifest = ucp_repro::core::manifest::UcpManifest::load(&universal).unwrap();
    let target = ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1);
    let before: Vec<RankState> = (0..target.world_size())
        .map(|rank| {
            let plan = gen_ucp_metadata(&manifest, &target, rank, DEFAULT_ALIGNMENT).unwrap();
            load_with_plan_opts(&universal, &plan, &LoadOptions::default()).unwrap()
        })
        .collect();

    // Damage a block-*table* entry of the biggest fp32 atom; the payload
    // itself stays intact.
    let atom = fp32_atoms(&universal).into_iter().next().unwrap();
    let mut bytes = std::fs::read(&atom).unwrap();
    let index =
        ucp_repro::storage::ContainerIndex::read_from(&mut std::io::Cursor::new(&bytes)).unwrap();
    let info = index.get("fp32").unwrap().clone();
    assert!(info.crc_block > 0, "test premise: v2 atom with a table");
    let table_off = (info.payload_offset + info.payload_len) as usize;
    bytes[table_off] ^= 1;
    std::fs::write(&atom, &bytes).unwrap();

    // Ranged loads fall back to a verified whole-section read and still
    // produce the exact pre-corruption bytes, counting the fallback.
    let rec = ucp_repro::telemetry::global();
    rec.reset();
    rec.set_enabled(true);
    for (rank, expected) in before.iter().enumerate() {
        let plan = gen_ucp_metadata(&manifest, &target, rank, DEFAULT_ALIGNMENT).unwrap();
        let loaded = load_with_plan_opts(&universal, &plan, &LoadOptions::default()).unwrap();
        assert_states_identical(&loaded, expected, &format!("table-fallback rank {rank}"));
    }
    let report = rec.report("table_fallback");
    rec.set_enabled(false);
    assert!(
        report.counter("load/ranged_fallback").unwrap_or(0) > 0,
        "fallback must be counted"
    );

    // Damaging the payload itself defeats both the table and the
    // whole-payload CRC: the load must now fail, not fabricate data.
    bytes[table_off] ^= 1; // restore the table
    bytes[info.payload_offset as usize + 3] ^= 1; // corrupt the data
    std::fs::write(&atom, &bytes).unwrap();
    let plan = gen_ucp_metadata(&manifest, &target, 0, DEFAULT_ALIGNMENT).unwrap();
    assert!(
        load_with_plan_opts(&universal, &plan, &LoadOptions::default()).is_err(),
        "corrupt payload must fail the load"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn session_cache_shares_bytes_across_dp_replicas() {
    let _g = serial();
    let source = ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1);
    let dir = universal_checkpoint(source, "cache", DType::F32);

    let rec = ucp_repro::telemetry::global();
    rec.reset();
    rec.set_enabled(true);
    let session = LoadSession::open(&dir, 2, LoadOptions::default()).unwrap();
    let target = ParallelConfig::new(1, 1, 4, 1, ZeroStage::Zero1);
    for rank in 0..target.world_size() {
        session.load_rank(&target, rank, DEFAULT_ALIGNMENT).unwrap();
    }
    let report = rec.report("ranged_load_test");
    rec.set_enabled(false);

    let counter = |name: &str| report.counter(name).unwrap_or(0);
    let (read, needed) = (counter("load/bytes_read"), counter("load/bytes_needed"));
    assert!(counter("load/cache_misses") > 0, "first replica must read");
    assert!(
        counter("load/cache_hits") > 0,
        "later DP replicas must hit the session cache"
    );
    assert!(counter("load/cache_hit_bytes") > 0);
    assert!(read > 0 && needed > 0);
    assert!(
        read < needed,
        "cache sharing should make bytes read ({read}) less than bytes \
         needed ({needed}) when four DP replicas load the same slice"
    );
    std::fs::remove_dir_all(&dir).ok();
}
