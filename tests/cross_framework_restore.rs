//! Cross-framework restore: a foreign (litsim/Lightning-style)
//! consolidated checkpoint converts through the adapter and resumes under
//! distributed strategies, preserving the model state bitwise.

use ucp_repro::core::adapter::{save_litsim_checkpoint, LitSimAdapter, SourceAdapter};
use ucp_repro::core::pattern::ParamPattern;
use ucp_repro::model::{param_specs, ModelConfig};
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::tensor::{DetRng, Tensor};
use ucp_repro::trainer::{train_run, ResumeMode, TrainConfig, TrainPlan};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_it_xfw_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fabricate(model: &ModelConfig, seed: u64) -> Vec<(String, Tensor, Tensor, Tensor)> {
    let rng = DetRng::new(seed);
    param_specs(model)
        .into_iter()
        .map(|s| {
            let w = s.materialize_full(&rng);
            let m = Tensor::randn(s.shape.clone(), 0.01, &rng.derive(&format!("m{}", s.name)));
            let v = Tensor::randn(s.shape.clone(), 0.001, &rng.derive(&format!("v{}", s.name)))
                .cast(ucp_repro::tensor::DType::F32);
            // Second moments must be non-negative for Adam.
            let v = Tensor::from_vec(
                v.as_slice().iter().map(|x| x.abs()).collect(),
                s.shape.clone(),
            )
            .unwrap();
            (s.name, w, m, v)
        })
        .collect()
}

#[test]
fn foreign_checkpoint_trains_under_every_axis() {
    let base = scratch("axes");
    let model = ModelConfig::gpt3_tiny();
    let states = fabricate(&model, 41);
    let ckpt = base.join("litsim.ckpt");
    save_litsim_checkpoint(&ckpt, &model, 50, 41, 400, 50, &states).unwrap();
    let manifest = LitSimAdapter.convert(&ckpt, &base, 50).unwrap();
    assert_eq!(manifest.iteration, 50);
    assert!(manifest
        .params
        .iter()
        .all(|a| a.pattern == ParamPattern::Unique));

    for target in [
        ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1),
        ParallelConfig::new(1, 2, 1, 1, ZeroStage::Zero1),
        ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero2),
    ] {
        let run = train_run(&TrainPlan {
            config: TrainConfig::quick(model.clone(), target, 41),
            until_iteration: 52,
            resume: ResumeMode::Universal {
                dir: base.clone(),
                step: 50,
            },
            checkpoint_every: None,
            checkpoint_dir: None,
        })
        .unwrap();
        assert_eq!(run.start_iteration, 50);
        assert!(run.losses.iter().all(|(_, l)| l.is_finite()));
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn adapter_preserves_adam_step_and_data_cursor() {
    let base = scratch("state");
    let model = ModelConfig::llama_tiny();
    let states = fabricate(&model, 42);
    let ckpt = base.join("litsim.ckpt");
    save_litsim_checkpoint(&ckpt, &model, 123, 42, 984, 123, &states).unwrap();
    let manifest = LitSimAdapter.convert(&ckpt, &base, 123).unwrap();
    assert_eq!(manifest.adam_step, 123);
    assert_eq!(manifest.data_cursor, 984);
    assert_eq!(manifest.seed, 42);
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn round_trip_foreign_to_native_to_universal() {
    // litsim → UCP → train+save native → convert → UCP again: the full
    // interoperability cycle.
    let base = scratch("cycle");
    let model = ModelConfig::gpt3_tiny();
    let states = fabricate(&model, 43);
    let ckpt = base.join("litsim.ckpt");
    save_litsim_checkpoint(&ckpt, &model, 0, 43, 0, 0, &states).unwrap();
    LitSimAdapter.convert(&ckpt, &base, 0).unwrap();

    let native_dir = scratch("cycle_native");
    train_run(&TrainPlan {
        config: TrainConfig::quick(
            model.clone(),
            ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1),
            43,
        ),
        until_iteration: 3,
        resume: ResumeMode::Universal {
            dir: base.clone(),
            step: 0,
        },
        checkpoint_every: Some(3),
        checkpoint_dir: Some(native_dir.clone()),
    })
    .unwrap();
    let (manifest, _) = ucp_repro::core::convert_to_universal(
        &native_dir,
        3,
        &ucp_repro::core::ConvertOptions::default(),
    )
    .unwrap();
    assert_eq!(manifest.iteration, 3);
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&native_dir).ok();
}
