//! Source → Target resharding matrix with loss-continuity assertions —
//! a compressed integration version of Fig. 6/7 (the full experiment runs
//! in the `figures` binary).
//!
//! Every resumed run must continue the uninterrupted baseline within a
//! tolerance far tighter than the paper's ±0.02 band.

use ucp_repro::core::convert::ConvertOptions;
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::trainer::{convert_checkpoint, train_run, ResumeMode, TrainConfig, TrainPlan};

const TOL: f64 = 2e-3;

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_it_matrix_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn continuity_case(
    name: &str,
    model: ModelConfig,
    source: ParallelConfig,
    target: ParallelConfig,
    seed: u64,
) {
    let dir = scratch(name);
    let (ckpt, until) = (4u64, 8u64);
    let src_cfg = TrainConfig::quick(model.clone(), source, seed);
    let tgt_cfg = TrainConfig::quick(model, target, seed);

    let baseline = train_run(&TrainPlan::simple(src_cfg.clone(), until)).unwrap();
    train_run(&TrainPlan {
        config: src_cfg,
        until_iteration: ckpt,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(ckpt),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    convert_checkpoint(&dir, ckpt, &ConvertOptions::default()).unwrap();
    let resumed = train_run(&TrainPlan {
        config: tgt_cfg,
        until_iteration: until,
        resume: ResumeMode::Universal {
            dir: dir.clone(),
            step: ckpt,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap();

    assert_eq!(resumed.start_iteration, ckpt);
    for ((ia, la), (ib, lb)) in baseline.losses[ckpt as usize..].iter().zip(&resumed.losses) {
        assert_eq!(ia, ib);
        assert!(
            (la - lb).abs() < TOL,
            "{name}: iteration {ia}, baseline {la} vs resumed {lb}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gpt_3d_to_pure_dp() {
    continuity_case(
        "3d_to_dp",
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(2, 2, 2, 1, ZeroStage::Zero1),
        ParallelConfig::new(1, 1, 4, 1, ZeroStage::Zero2),
        1,
    );
}

#[test]
fn gpt_pure_dp_to_3d() {
    continuity_case(
        "dp_to_3d",
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(1, 1, 4, 1, ZeroStage::Zero2),
        ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1),
        2,
    );
}

#[test]
fn gpt_single_gpu_to_eight() {
    continuity_case(
        "one_to_eight",
        ModelConfig::gpt3_tiny(),
        ParallelConfig::single(),
        ParallelConfig::new(2, 2, 2, 1, ZeroStage::Zero1),
        3,
    );
}

#[test]
fn gpt_eight_to_single_gpu() {
    continuity_case(
        "eight_to_one",
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(2, 2, 2, 1, ZeroStage::Zero1),
        ParallelConfig::single(),
        4,
    );
}

#[test]
fn gpt_zero3_to_zero1_tp() {
    continuity_case(
        "z3_to_z1",
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(1, 1, 4, 1, ZeroStage::Zero3),
        ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1),
        5,
    );
}

#[test]
fn gpt_into_sequence_parallel() {
    continuity_case(
        "into_sp",
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1),
        ParallelConfig::new(1, 1, 2, 2, ZeroStage::Zero1),
        6,
    );
}

#[test]
fn gpt_out_of_sequence_parallel() {
    continuity_case(
        "out_of_sp",
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(1, 1, 2, 2, ZeroStage::Zero1),
        ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1),
        7,
    );
}

#[test]
fn llama_tp_pp_swap() {
    continuity_case(
        "llama_swap",
        ModelConfig::llama_tiny(),
        ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1),
        ParallelConfig::new(1, 2, 2, 1, ZeroStage::Zero1),
        8,
    );
}

#[test]
fn moe_expands_tensor_parallelism() {
    continuity_case(
        "moe_tp",
        ModelConfig::moe_tiny(),
        ParallelConfig::new(1, 2, 2, 1, ZeroStage::Zero1),
        ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1),
        9,
    );
}

#[test]
fn bloom_pipeline_depth_change() {
    continuity_case(
        "bloom_pp",
        ModelConfig::bloom_tiny(),
        ParallelConfig::new(1, 4, 1, 1, ZeroStage::Zero1),
        ParallelConfig::new(1, 2, 2, 1, ZeroStage::Zero1),
        10,
    );
}
