//! Born-universal checkpoints: the overlapped save pipeline publishes
//! `latest_universal` at save time, and the tree it writes must be
//! bitwise-identical to what the offline `convert_to_universal` pass would
//! have produced — same atoms, same manifest, same bytes. Resuming from a
//! pipeline-published tree therefore needs no convert pass and lands on
//! exactly the state the offline path would load.

use ucp_repro::core::convert::{convert_to_universal, ConvertOptions};
use ucp_repro::core::fsck::{fsck, FsckOptions};
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::storage::layout;
use ucp_repro::tensor::DType;
use ucp_repro::trainer::{train_run, train_run_overlapped, ResumeMode, TrainConfig, TrainPlan};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_it_born_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every file under `dir` as (relative path, bytes), sorted by path.
fn tree_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else {
                let rel = p.strip_prefix(dir).unwrap().to_string_lossy().into_owned();
                out.push((rel, std::fs::read(&p).unwrap()));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn plan(
    dir: &std::path::Path,
    model: &ModelConfig,
    parallel: ParallelConfig,
    dtype: DType,
    seed: u64,
    every: u64,
) -> TrainPlan {
    let mut cfg = TrainConfig::quick(model.clone(), parallel, seed);
    cfg.dtype = dtype;
    TrainPlan {
        config: cfg,
        until_iteration: 4,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(every),
        checkpoint_dir: Some(dir.to_path_buf()),
    }
}

/// The whole contract for one source configuration:
///
/// 1. an overlapped run publishes `latest_universal` at save time;
/// 2. its universal trees are bitwise-equal to offline conversion of an
///    identical synchronous run, at every saved step;
/// 3. the pipeline-written repository is fsck-clean;
/// 4. a reconfigured resume straight off the pipeline tree — no convert
///    pass anywhere — yields losses identical to resuming off the
///    offline-converted tree.
fn assert_born_universal(name: &str, model: ModelConfig, source: ParallelConfig, dtype: DType) {
    assert_born_universal_every(name, model, source, dtype, 2);
}

fn assert_born_universal_every(
    name: &str,
    model: ModelConfig,
    source: ParallelConfig,
    dtype: DType,
    every: u64,
) {
    let seed = 83;
    let pipe = scratch(&format!("{name}_pipe"));
    let off = scratch(&format!("{name}_off"));
    let steps: Vec<u64> = (every..=4).step_by(every as usize).collect();

    let pipe_run = train_run_overlapped(&plan(&pipe, &model, source, dtype, seed, every)).unwrap();
    // Published at save time: no convert call has touched `pipe`.
    assert_eq!(
        layout::read_latest_universal(&pipe),
        Some(4),
        "{name}: pipeline did not publish latest_universal at save time"
    );
    assert_eq!(layout::read_latest(&pipe), Some(4), "{name}");

    let off_run = train_run(&plan(&off, &model, source, dtype, seed, every)).unwrap();
    assert_eq!(pipe_run.losses, off_run.losses, "{name}: training diverged");
    for &step in &steps {
        convert_to_universal(&off, step, &ConvertOptions::default()).unwrap();
    }

    // At per-iteration cadence the pipeline patches dirty atoms in carried
    // buffers and hard-links clean ones from the previous step; the
    // offline path rebuilds each step from its native files alone. Byte
    // equality at every step is the incremental path's soundness proof.
    for &step in &steps {
        let a = tree_bytes(&layout::universal_dir(&pipe, step));
        let b = tree_bytes(&layout::universal_dir(&off, step));
        assert!(!a.is_empty(), "{name} step {step}: empty universal tree");
        assert_eq!(
            a, b,
            "{name} step {step}: pipeline universal tree differs from offline convert"
        );
    }

    let report = fsck(&pipe, &FsckOptions::default()).unwrap();
    assert!(
        report.clean(),
        "{name}: pipeline tree dirty: {:?}",
        report.problems
    );
    assert!(
        report.markers_repaired.is_empty(),
        "{name}: marker named an incomplete step: {:?}",
        report.markers_repaired
    );

    // Reconfigure to a single rank and resume both trees universally. The
    // pipeline tree resumes as-is; byte-equal trees must produce
    // bit-identical losses.
    let target = ParallelConfig::new(1, 1, 1, 1, ZeroStage::Zero1);
    let resume = |dir: &std::path::Path| {
        let mut cfg = TrainConfig::quick(model.clone(), target, seed);
        cfg.dtype = dtype;
        train_run(&TrainPlan {
            config: cfg,
            until_iteration: 6,
            resume: ResumeMode::Universal {
                dir: dir.to_path_buf(),
                step: 4,
            },
            checkpoint_every: None,
            checkpoint_dir: None,
        })
        .unwrap_or_else(|e| panic!("{name}: universal resume from {dir:?} failed: {e}"))
    };
    let ra = resume(&pipe);
    let rb = resume(&off);
    assert_eq!(ra.start_iteration, 4, "{name}");
    assert_eq!(
        ra.losses, rb.losses,
        "{name}: no-convert resume diverged from offline-convert resume"
    );

    std::fs::remove_dir_all(&pipe).ok();
    std::fs::remove_dir_all(&off).ok();
}

#[test]
fn born_universal_tp2_dp2() {
    assert_born_universal(
        "tp2_dp2",
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1),
        DType::F32,
    );
}

#[test]
fn born_universal_tp2_pp2_tied() {
    // Tied embeddings under PP>1: only the last stage may write the shared
    // atom, matching offline last-wins deduplication.
    assert_born_universal(
        "tp2_pp2_tied",
        ModelConfig::gpt3_tiny_tied(),
        ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1),
        DType::F32,
    );
}

#[test]
fn born_universal_zero2() {
    assert_born_universal(
        "zero2",
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero2),
        DType::F32,
    );
}

#[test]
fn born_universal_bf16_source() {
    assert_born_universal(
        "bf16",
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1),
        DType::BF16,
    );
}

#[test]
fn born_universal_every_iteration_tp2_dp2() {
    // checkpoint_every = 1: four consecutive saves share one persistent
    // mesh and patch one carried assembler per stage.
    assert_born_universal_every(
        "every1_tp2_dp2",
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1),
        DType::F32,
        1,
    );
}

#[test]
fn born_universal_every_iteration_pp2() {
    assert_born_universal_every(
        "every1_pp2",
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(1, 2, 2, 1, ZeroStage::Zero1),
        DType::F32,
        1,
    );
}

#[test]
fn born_universal_every_iteration_moe() {
    // MoE at per-iteration cadence: the top-k router leaves unrouted
    // experts' gradients exactly zero, so their state is bitwise frozen
    // and the dirty filter drops their fragments — the equality check
    // proves skipping them loses nothing.
    assert_born_universal_every(
        "every1_moe",
        ModelConfig::moe_tiny(),
        ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1),
        DType::F32,
        1,
    );
}

#[test]
fn pruned_link_sources_leave_linked_atoms_readable() {
    // Per-iteration saves hard-link clean atoms from the previous step's
    // files. Pruning that previous step unlinks the *names*; the shared
    // inodes must survive, leaving the newer tree complete, fsck-clean,
    // and resumable.
    use ucp_repro::storage::retention::{prune, RetentionPolicy};

    let model = ModelConfig::gpt3_tiny();
    let source = ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1);
    let dir = scratch("every1_prune");
    let seed = 83;
    train_run_overlapped(&plan(&dir, &model, source, DType::F32, seed, 1)).unwrap();
    assert_eq!(layout::read_latest_universal(&dir), Some(4));

    let report = prune(&dir, &RetentionPolicy::last(1)).unwrap();
    assert_eq!(report.removed, vec![1, 2, 3], "steps 1-3 pruned away");
    assert!(!layout::universal_dir(&dir, 3).exists());

    let fsck_report = fsck(&dir, &FsckOptions::default()).unwrap();
    assert!(
        fsck_report.clean(),
        "tree with back-referenced atoms dirty after pruning link sources: {:?}",
        fsck_report.problems
    );

    // Resume from the surviving step: its linked atoms must read back.
    let target = ParallelConfig::new(1, 1, 1, 1, ZeroStage::Zero1);
    let run = train_run(&TrainPlan {
        config: TrainConfig::quick(model, target, seed),
        until_iteration: 5,
        resume: ResumeMode::Universal {
            dir: dir.clone(),
            step: 4,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap();
    assert_eq!(run.start_iteration, 4);
    std::fs::remove_dir_all(&dir).ok();
}
