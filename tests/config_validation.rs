//! Configuration-validation edge cases: every invalid combination must be
//! rejected with an actionable message before any rank spawns.

use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::trainer::{train_run, TrainConfig, TrainPlan};

fn expect_config_error(mut mutate: impl FnMut(&mut TrainConfig), needle: &str) {
    let mut cfg = TrainConfig::quick(
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
        1,
    );
    mutate(&mut cfg);
    let err = train_run(&TrainPlan::simple(cfg, 1)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains(needle), "expected '{needle}' in: {msg}");
}

#[test]
fn batch_must_divide_by_dp() {
    expect_config_error(|c| c.global_batch = 7, "not divisible by DP");
}

#[test]
fn replica_batch_must_divide_by_microbatch() {
    expect_config_error(
        |c| {
            c.global_batch = 12;
            c.micro_batch = 4;
        },
        "not divisible by microbatch",
    );
}

#[test]
fn layers_must_divide_by_pp() {
    expect_config_error(
        |c| c.parallel = ParallelConfig::new(1, 3, 1, 1, ZeroStage::Zero1),
        "not divisible by PP",
    );
}

#[test]
fn seq_must_divide_by_sp() {
    expect_config_error(
        |c| c.parallel = ParallelConfig::new(1, 1, 1, 3, ZeroStage::Zero1),
        "not divisible by SP",
    );
}

#[test]
fn heads_must_divide_by_tp() {
    expect_config_error(
        |c| c.parallel = ParallelConfig::new(8, 1, 1, 1, ZeroStage::Zero1),
        "num_heads",
    );
}

#[test]
fn unpadded_vocab_must_divide_by_tp() {
    expect_config_error(
        |c| {
            c.model.vocab_size = 255;
            c.parallel = ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1);
        },
        "vocab",
    );
}

#[test]
fn zero_degrees_rejected() {
    expect_config_error(
        |c| c.parallel = ParallelConfig::new(0, 1, 1, 1, ZeroStage::Zero1),
        "degrees",
    );
}

#[test]
fn gqa_head_ratio_must_divide() {
    expect_config_error(|c| c.model.num_kv_heads = 3, "num_kv_heads");
}
