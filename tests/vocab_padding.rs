//! Vocabulary alignment padding (Megatron-style) through the full UCP
//! life cycle: train with a padded vocab, consolidate (StripPadding — the
//! atoms must be unpadded), and resume under TP degrees with *different*
//! padded extents.

use ucp_repro::core::convert::{convert_to_universal, ConvertOptions};
use ucp_repro::core::pattern::{FragmentSpec, ParamPattern};
use ucp_repro::model::{ModelConfig, Partition};
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::storage::layout;
use ucp_repro::storage::Container;
use ucp_repro::tensor::{DetRng, Shape, Tensor};
use ucp_repro::trainer::{train_run, ResumeMode, TrainConfig, TrainPlan};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_it_vpad_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn padded_extent_math() {
    // V=250, quantum 16: TP=1 pads to 256 (16·16), TP=2 pads to 256
    // (8·32), TP=4 pads to 256; quantum 24, TP=2 → 288.
    assert_eq!(Partition::padded_extent(250, 16, 1), 256);
    assert_eq!(Partition::padded_extent(250, 16, 2), 256);
    assert_eq!(Partition::padded_extent(250, 24, 2), 288);
    assert_eq!(
        Partition::padded_extent(256, 16, 2),
        256,
        "no-op when aligned"
    );
}

#[test]
fn padded_shard_roundtrip_via_strip() {
    let rng = DetRng::new(3);
    let full = Tensor::randn([250, 8], 1.0, &rng.derive("emb"));
    let p = Partition::PaddedShard {
        dim: 0,
        multiple: 16,
    };
    for tp in [1usize, 2, 4] {
        let shards: Vec<Tensor> = (0..tp).map(|r| p.shard(&full, tp, r)).collect();
        let padded_rows = Partition::padded_extent(250, 16, tp) / tp;
        for s in &shards {
            assert_eq!(s.shape().dims()[0], padded_rows);
        }
        let cat = p.unshard(&shards);
        assert_eq!(cat.shape().dims()[0], Partition::padded_extent(250, 16, tp));
        let back = cat.strip_dim(0, 250).unwrap();
        assert!(back.bitwise_eq(&full), "tp={tp}");
        // Padding rows are zero.
        let pad = cat.narrow(0, 250, cat.shape().dims()[0] - 250).unwrap();
        assert!(pad.as_slice().iter().all(|v| *v == 0.0));
    }
}

#[test]
fn padded_vocab_losses_match_across_tp() {
    let model = ModelConfig::gpt3_tiny_padded_vocab();
    assert_eq!(model.vocab_size, 250, "awkward vocab by construction");
    let run = |tp: usize| -> Vec<f64> {
        let cfg = TrainConfig::quick(
            model.clone(),
            ParallelConfig::new(tp, 1, 1, 1, ZeroStage::Zero1),
            81,
        );
        train_run(&TrainPlan::simple(cfg, 4))
            .unwrap()
            .losses
            .into_iter()
            .map(|(_, l)| l)
            .collect()
    };
    let base = run(1);
    let tp2 = run(2);
    for (i, (a, b)) in base.iter().zip(&tp2).enumerate() {
        assert!(
            (a - b).abs() < 2e-3,
            "padding must not change the math: iteration {i}, {a} vs {b}"
        );
    }
    // Initial loss near ln(250): padding rows get no probability mass.
    assert!((base[0] - (250f64).ln()).abs() < 0.5, "loss {}", base[0]);
}

#[test]
fn atoms_are_stripped_and_resume_repads() {
    let model = ModelConfig::gpt3_tiny_padded_vocab();
    let dir = scratch("lifecycle");
    // Source TP=2 (padded extent 256, 128 rows per rank).
    let src = TrainConfig::quick(
        model.clone(),
        ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1),
        82,
    );
    let baseline = train_run(&TrainPlan::simple(src.clone(), 6)).unwrap();
    train_run(&TrainPlan {
        config: src,
        until_iteration: 3,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(3),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    let (manifest, _) = convert_to_universal(&dir, 3, &ConvertOptions::default()).unwrap();

    // The atom is unpadded [250, H] and carries the padded-dim pattern.
    let atom = manifest.atom("embedding.word_embeddings.weight").unwrap();
    assert_eq!(atom.shape, Shape::new([250, 32]));
    assert_eq!(
        atom.pattern,
        ParamPattern::Fragment(FragmentSpec::PaddedDim {
            dim: 0,
            multiple: 16
        })
    );
    let file = Container::read_file(&layout::atom_path(
        &layout::universal_dir(&dir, 3),
        "lm_head.weight",
        layout::AtomFile::Fp32,
    ))
    .unwrap();
    assert_eq!(file.get("fp32").unwrap().shape().dims(), &[250, 32]);

    // Resume under TP=4 (different padded extent) and TP=1.
    for tp in [4usize, 1] {
        let tgt = TrainConfig::quick(
            model.clone(),
            ParallelConfig::new(tp, 1, 1, 1, ZeroStage::Zero1),
            82,
        );
        let resumed = train_run(&TrainPlan {
            config: tgt,
            until_iteration: 6,
            resume: ResumeMode::Universal {
                dir: dir.clone(),
                step: 3,
            },
            checkpoint_every: None,
            checkpoint_dir: None,
        })
        .unwrap();
        for ((ia, la), (ib, lb)) in baseline.losses[3..].iter().zip(&resumed.losses) {
            assert_eq!(ia, ib);
            assert!(
                (la - lb).abs() < 2e-3,
                "tp={tp} iteration {ia}: baseline {la} vs resumed {lb}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
