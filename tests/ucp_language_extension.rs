//! The UCP language as an extension point (§3.2: "UCP is quite extensible
//! in that it allows users to easily define new (sub)-patterns"): a
//! user-written spec — authored as JSON, the language's textual form —
//! overrides the derived pattern rules during conversion.

use ucp_repro::core::convert::{convert_to_universal, ConvertOptions};
use ucp_repro::core::language::{UcpSpec, UcpSpecBuilder};
use ucp_repro::core::pattern::ParamPattern;
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::storage::layout;
use ucp_repro::storage::Container;
use ucp_repro::trainer::{train_run, ResumeMode, TrainConfig, TrainPlan};

fn make_checkpoint(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_it_lang_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = TrainConfig::quick(
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1),
        51,
    );
    train_run(&TrainPlan {
        config: cfg,
        until_iteration: 2,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    dir
}

#[test]
fn user_rule_overrides_derived_pattern() {
    // Mark every layernorm weight params_to_average via a hand-written
    // rule. With TP=2 the replicas are identical, so averaging is a no-op
    // value-wise — but the manifest must record the user's pattern, and
    // the replica-equality verifier must not run for those params.
    let dir = make_checkpoint("override");
    let spec = UcpSpecBuilder::new()
        .rule("layers.*.input_layernorm.weight", ParamPattern::ToAverage)
        .build();
    // Author → serialize → reload, proving the textual form carries the
    // override (what a user would keep in a spec file).
    let spec = UcpSpec::from_json(&spec.to_json().unwrap()).unwrap();
    let (manifest, _) = convert_to_universal(
        &dir,
        2,
        &ConvertOptions {
            spec_override: Some(spec),
            ..ConvertOptions::default()
        },
    )
    .unwrap();
    assert_eq!(
        manifest
            .atom("layers.3.input_layernorm.weight")
            .unwrap()
            .pattern,
        ParamPattern::ToAverage
    );
    // Unmatched parameters fall back to the derived rules.
    assert_eq!(
        manifest
            .atom("layers.3.post_attention_layernorm.weight")
            .unwrap()
            .pattern,
        ParamPattern::Replicated
    );
    // Averaging identical replicas equals the replica value.
    let universal = layout::universal_dir(&dir, 2);
    let avg = Container::read_file(&layout::atom_path(
        &universal,
        "layers.3.input_layernorm.weight",
        layout::AtomFile::Fp32,
    ))
    .unwrap();
    let rep = Container::read_file(&layout::atom_path(
        &universal,
        "layers.3.post_attention_layernorm.weight",
        layout::AtomFile::Fp32,
    ))
    .unwrap();
    assert_eq!(
        avg.get("fp32").unwrap().shape(),
        rep.get("fp32").unwrap().shape()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_user_rule_is_reported() {
    // A user rule that misdescribes the sharding (wrong fragment dim) must
    // surface as a shape inconsistency, not silent corruption.
    use ucp_repro::core::pattern::FragmentSpec;
    let dir = make_checkpoint("bad_rule");
    let spec = UcpSpecBuilder::new()
        .rule(
            "layers.*.attention.dense.weight",
            // Truly sharded along dim 1; claim dim 0.
            ParamPattern::Fragment(FragmentSpec::Dim { dim: 0 }),
        )
        .build();
    let err = convert_to_universal(
        &dir,
        2,
        &ConvertOptions {
            spec_override: Some(spec),
            ..ConvertOptions::default()
        },
    )
    .unwrap_err();
    assert!(
        err.to_string().contains("shape"),
        "expected shape mismatch, got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
