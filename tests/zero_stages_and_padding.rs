//! ZeRO-stage coverage and padding behaviour: the flat `fragment_params`
//! path (parameters straddling DP chunk boundaries) and `StripPadding`.

use ucp_repro::core::checkpoint::load_optim_states;
use ucp_repro::core::convert::{convert_to_universal, ConvertOptions};
use ucp_repro::core::load::{gen_ucp_metadata, load_with_plan, DEFAULT_ALIGNMENT};
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, RankCoord, ZeroStage};
use ucp_repro::storage::layout;
use ucp_repro::trainer::{train_run, ResumeMode, TrainConfig, TrainPlan};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_it_zero_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn checkpoint_with(parallel: ParallelConfig, name: &str, seed: u64) -> std::path::PathBuf {
    let dir = scratch(name);
    let cfg = TrainConfig::quick(ModelConfig::gpt3_tiny(), parallel, seed);
    train_run(&TrainPlan {
        config: cfg,
        until_iteration: 2,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    dir
}

#[test]
fn all_zero_stages_convert_identically() {
    // Stages 1, 2, 3 differ in runtime communication, not in checkpoint
    // math — the consolidated atoms must agree across stages (same seed).
    let mut atom_hashes = Vec::new();
    for (i, zero) in [ZeroStage::Zero1, ZeroStage::Zero2, ZeroStage::Zero3]
        .into_iter()
        .enumerate()
    {
        let parallel = ParallelConfig::new(1, 1, 2, 1, zero);
        let dir = checkpoint_with(parallel, &format!("stage{i}"), 55);
        let (manifest, _) = convert_to_universal(&dir, 2, &ConvertOptions::default()).unwrap();
        let universal = layout::universal_dir(&dir, 2);
        // Hash the fp32 atom of a sharded parameter.
        let path = layout::atom_path(
            &universal,
            "embedding.word_embeddings.weight",
            layout::AtomFile::Fp32,
        );
        let bytes = std::fs::read(&path).unwrap();
        atom_hashes.push(ucp_repro::storage::crc::crc32c(&bytes));
        assert_eq!(manifest.params.len(), 101);
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(
        atom_hashes.windows(2).all(|w| w[0] == w[1]),
        "ZeRO stage changed the consolidated state: {atom_hashes:?}"
    );
}

#[test]
fn parameters_straddle_chunks_at_high_dp() {
    // dp=4 on the tiny model forces parameters across chunk boundaries —
    // the hardest fragment case. Verify the checkpoint actually contains
    // straddlers, then that conversion and reload survive them.
    let parallel = ParallelConfig::new(1, 1, 4, 1, ZeroStage::Zero2);
    let dir = checkpoint_with(parallel, "straddle", 56);
    let step_dir = layout::step_dir(&dir, 2);
    let (_, shard) = load_optim_states(&step_dir, 0, 0, 0).unwrap();
    let straddlers = shard
        .layout
        .slots
        .iter()
        .filter(|s| shard.layout.fragments_of(s).len() > 1)
        .count();
    assert!(straddlers > 0, "test premise: some parameter must straddle");

    let (manifest, _) = convert_to_universal(&dir, 2, &ConvertOptions::default()).unwrap();
    let universal = layout::universal_dir(&dir, 2);
    // Reload under dp=1 and check the straddled params match the
    // all-gathered flat source.
    let target = ParallelConfig::single();
    let plan = gen_ucp_metadata(&manifest, &target, 0, DEFAULT_ALIGNMENT).unwrap();
    let state = load_with_plan(&universal, &plan).unwrap();

    // Reassemble source flat from the four chunks.
    let mut source_flat = Vec::new();
    for dp in 0..4 {
        let (_, s) = load_optim_states(&step_dir, dp, 0, 0).unwrap();
        source_flat.extend_from_slice(&s.fp32);
    }
    for slot in &shard.layout.slots {
        let original = &source_flat[slot.offset..slot.offset + slot.len];
        let loaded = state
            .model_params
            .iter()
            .find(|(n, _)| n.as_ref() == slot.name)
            .map(|(_, t)| t)
            .unwrap();
        assert_eq!(
            loaded.as_slice(),
            original,
            "straddled parameter {} corrupted in flight",
            slot.name
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn alignment_padding_never_reaches_atoms() {
    // With a large alignment quantum, padding dominates the flat buffer;
    // atoms must still have exactly the spec shapes (StripPadding).
    let parallel = ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1);
    let dir = scratch("padding");
    let mut cfg = TrainConfig::quick(ModelConfig::gpt3_tiny(), parallel, 57);
    cfg.alignment = 64;
    train_run(&TrainPlan {
        config: cfg,
        until_iteration: 2,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    let step_dir = layout::step_dir(&dir, 2);
    let (_, shard) = load_optim_states(&step_dir, 0, 0, 0).unwrap();
    assert_eq!(shard.layout.alignment, 64);
    assert!(shard.layout.total_len > shard.layout.real_len());

    let (manifest, _) = convert_to_universal(&dir, 2, &ConvertOptions::default()).unwrap();
    for atom in &manifest.params {
        assert_eq!(
            atom.shape.num_elements(),
            ucp_repro::model::find_spec(
                &ucp_repro::model::param_specs(&manifest.model),
                &atom.name
            )
            .unwrap()
            .shape
            .num_elements(),
            "padding leaked into atom {}",
            atom.name
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn alignment_can_differ_between_source_and_target() {
    // Source saved with alignment 8; target loads with alignment 32.
    // The atoms are alignment-free, so this must work and keep training.
    let parallel = ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1);
    let dir = checkpoint_with(parallel, "realign", 58);
    convert_to_universal(&dir, 2, &ConvertOptions::default()).unwrap();
    let mut target_cfg = TrainConfig::quick(
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1),
        58,
    );
    target_cfg.alignment = 32;
    let run = train_run(&TrainPlan {
        config: target_cfg,
        until_iteration: 4,
        resume: ResumeMode::Universal {
            dir: dir.clone(),
            step: 2,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap();
    assert_eq!(run.losses.len(), 2);
    assert!(run.losses.iter().all(|(_, l)| l.is_finite()));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spill_mode_matches_in_memory_conversion() {
    // The memory-bounded conversion (fragments persisted between Extract
    // and Union) must produce byte-identical atoms.
    let parallel = ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1);
    let dir_a = checkpoint_with(parallel, "spill_a", 59);
    let dir_b = checkpoint_with(parallel, "spill_b", 59);
    convert_to_universal(&dir_a, 2, &ConvertOptions::default()).unwrap();
    convert_to_universal(
        &dir_b,
        2,
        &ConvertOptions {
            spill_fragments: true,
            ..ConvertOptions::default()
        },
    )
    .unwrap();
    let ua = layout::universal_dir(&dir_a, 2);
    let ub = layout::universal_dir(&dir_b, 2);
    for name in ["embedding.word_embeddings.weight", "lm_head.weight"] {
        for file in layout::AtomFile::ALL {
            let a = std::fs::read(layout::atom_path(&ua, name, file)).unwrap();
            let b = std::fs::read(layout::atom_path(&ub, name, file)).unwrap();
            assert_eq!(a, b, "{name} {} differs under spill mode", file.file_name());
        }
    }
    // No temp fragments left behind.
    assert!(!ub.join("_extract_tmp").exists());
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn single_worker_conversion_matches_parallel() {
    let parallel = ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1);
    let dir_a = checkpoint_with(parallel, "workers_a", 60);
    let dir_b = checkpoint_with(parallel, "workers_b", 60);
    convert_to_universal(
        &dir_a,
        2,
        &ConvertOptions {
            workers: 1,
            ..ConvertOptions::default()
        },
    )
    .unwrap();
    convert_to_universal(
        &dir_b,
        2,
        &ConvertOptions {
            workers: 8,
            ..ConvertOptions::default()
        },
    )
    .unwrap();
    let a = layout::dir_size_bytes(&layout::universal_dir(&dir_a, 2));
    let b = layout::dir_size_bytes(&layout::universal_dir(&dir_b, 2));
    assert_eq!(a, b);
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn universal_resume_into_zero3_and_back() {
    let dir = checkpoint_with(
        ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero3),
        "z3_cycle",
        61,
    );
    convert_to_universal(&dir, 2, &ConvertOptions::default()).unwrap();
    let target = TrainConfig::quick(
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(1, 1, 4, 1, ZeroStage::Zero3),
        61,
    );
    let run = train_run(&TrainPlan {
        config: target,
        until_iteration: 4,
        resume: ResumeMode::Universal {
            dir: dir.clone(),
            step: 2,
        },
        checkpoint_every: Some(4),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    assert!(run.losses.iter().all(|(_, l)| l.is_finite()));
    // Re-convert the re-saved checkpoint: the cycle closes.
    convert_to_universal(&dir, 4, &ConvertOptions::default()).unwrap();
    assert!(layout::read_latest_universal(&dir) == Some(4));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coord_mapping_marker() {
    // Keep RankCoord in the public API exercised from the facade.
    let p = ParallelConfig::new(2, 2, 2, 1, ZeroStage::Zero1);
    let c = RankCoord {
        dp: 1,
        pp: 1,
        sp: 0,
        tp: 1,
    };
    assert_eq!(p.coord(p.rank_of(c)), c);
}
