//! §3.1's mixed-precision rationale: "By keeping the fp32 weight/optimizer
//! values, the training can resume either with fp16 or bfloat16 MPT."
//!
//! The atoms store fp32 masters, so a run trained under bf16 mixed
//! precision can resume under fp16 (or full fp32) — the low-precision copy
//! is re-derived from the master at load time.

use ucp_repro::core::convert::{convert_to_universal, ConvertOptions};
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::tensor::DType;
use ucp_repro::trainer::{train_run, ResumeMode, TrainConfig, TrainPlan};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_it_mpt_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn bf16_checkpoint_resumes_under_fp16_and_fp32() {
    let dir = scratch("switch");
    let model = ModelConfig::gpt3_tiny();
    let mut src = TrainConfig::quick(
        model.clone(),
        ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
        91,
    );
    src.dtype = DType::BF16;
    let baseline = train_run(&TrainPlan::simple(src.clone(), 8)).unwrap();
    train_run(&TrainPlan {
        config: src.clone(),
        until_iteration: 4,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(4),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    convert_to_universal(&dir, 4, &ConvertOptions::default()).unwrap();

    for (dtype, tol) in [
        // Same precision: continuation is tight.
        (DType::BF16, 2e-3),
        // Different low precision: quantization of the model copy differs,
        // so curves drift slightly but must stay in the same regime.
        (DType::F16, 0.15),
        (DType::F32, 0.15),
    ] {
        let mut tgt = TrainConfig::quick(
            model.clone(),
            ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1),
            91,
        );
        tgt.dtype = dtype;
        let resumed = train_run(&TrainPlan {
            config: tgt,
            until_iteration: 8,
            resume: ResumeMode::Universal {
                dir: dir.clone(),
                step: 4,
            },
            checkpoint_every: None,
            checkpoint_dir: None,
        })
        .unwrap();
        for ((ia, la), (ib, lb)) in baseline.losses[4..].iter().zip(&resumed.losses) {
            assert_eq!(ia, ib);
            assert!(
                (la - lb).abs() < tol,
                "{dtype}: iteration {ia}, baseline {la} vs resumed {lb}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fp16_training_round_trips() {
    // A full fp16 run checkpoints and resumes natively and universally.
    let dir = scratch("fp16");
    let mut cfg = TrainConfig::quick(ModelConfig::llama_tiny(), ParallelConfig::single(), 92);
    cfg.dtype = DType::F16;
    let full = train_run(&TrainPlan::simple(cfg.clone(), 6)).unwrap();
    train_run(&TrainPlan {
        config: cfg.clone(),
        until_iteration: 3,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(3),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    convert_to_universal(&dir, 3, &ConvertOptions::default()).unwrap();
    let resumed = train_run(&TrainPlan {
        config: cfg,
        until_iteration: 6,
        resume: ResumeMode::Universal {
            dir: dir.clone(),
            step: 3,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap();
    for ((ia, la), (ib, lb)) in full.losses[3..].iter().zip(&resumed.losses) {
        assert_eq!(ia, ib);
        assert!((la - lb).abs() < 2e-3, "iteration {ia}: {la} vs {lb}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
