//! Elastic recovery chaos matrix (PR 5 acceptance).
//!
//! For every scheduled rank kill — panic AND hang variants — across three
//! kill steps and two degraded target topologies, the supervisor must
//! auto-resume from the latest committed checkpoint, the post-resume loss
//! trajectory must be bitwise-equal to a fault-free reference run from
//! that step, no collective may block past the watchdog deadline, and
//! `ucp fsck` must find the tree clean after every recovery.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ucp_repro::core::fsck::{fsck, FsckOptions};
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::trainer::supervisor::{supervise, FaultKind, RankFault, SupervisorOptions};
use ucp_repro::trainer::{train_run, ResumeMode, TrainConfig, TrainPlan};

const ITERS: u64 = 6;
const SAVE_EVERY: u64 = 2;
const SEED: u64 = 4242;
const DEADLINE: Duration = Duration::from_secs(1);

/// Serializes the tests in this file: the recovery-counter test reads
/// the process-global telemetry recorder, which a concurrently running
/// supervised recovery from another test would also increment.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ucp_elastic_recovery_{name}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn source_topology() -> ParallelConfig {
    // 4 ranks: TP2 x PP1 x DP2.
    ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1)
}

fn degraded_targets() -> Vec<ParallelConfig> {
    vec![
        // Lose the second DP replica: TP2 x PP1 x DP1 (2 ranks).
        ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1),
        // Lose a whole TP pair too: TP1 x PP1 x DP2 (2 ranks).
        ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
    ]
}

/// The chaos matrix: 3 kill steps x {panic, hang} x 2 degraded targets.
/// Every cell replays a fault-free reference from its own checkpoint
/// tree and compares loss trajectories bit for bit.
#[test]
fn chaos_matrix_recovers_bitwise_under_reduced_parallelism() {
    let _guard = test_guard();
    let source = source_topology();
    let kill_rank = source.world_size() - 1;
    let mut cells_run = 0usize;
    for kill_step in [3u64, 4, 5] {
        for kind in [FaultKind::Panic, FaultKind::Hang] {
            for (ti, target) in degraded_targets().into_iter().enumerate() {
                let kind_label = match kind {
                    FaultKind::Panic => "panic",
                    FaultKind::Hang => "hang",
                    FaultKind::SlowMs(_) => unreachable!(),
                };
                let dir = tmp(&format!("s{kill_step}_{kind_label}_t{ti}"));
                let plan = TrainPlan {
                    config: TrainConfig::quick(ModelConfig::gpt3_tiny(), source, SEED),
                    until_iteration: ITERS,
                    resume: ResumeMode::Fresh,
                    checkpoint_every: Some(SAVE_EVERY),
                    checkpoint_dir: Some(dir.clone()),
                };
                let opts = SupervisorOptions {
                    deadline: DEADLINE,
                    hot_replicas: None,
                    max_restarts: 2,
                    ladder: vec![target],
                    faults: vec![RankFault {
                        rank: kill_rank,
                        step: kill_step,
                        kind,
                    }],
                };
                let t0 = Instant::now();
                let report = supervise(&plan, &opts).unwrap_or_else(|e| {
                    panic!("cell s{kill_step}/{kind_label}/t{ti} did not recover: {e}")
                });
                let elapsed = t0.elapsed();
                // No collective may block past the watchdog deadline: even
                // the hang cells must finish in bounded time (training +
                // recovery + one deadline), far under this ceiling.
                assert!(
                    elapsed < Duration::from_secs(120),
                    "cell s{kill_step}/{kind_label}/t{ti} took {elapsed:?}"
                );

                assert_eq!(report.restarts.len(), 1, "exactly one recovery cycle");
                let restart = &report.restarts[0];
                assert_eq!(restart.rank, kill_rank);
                assert_eq!(restart.step, kill_step);
                assert!(
                    restart.payload.contains("injected fault"),
                    "unexpected payload: {}",
                    restart.payload
                );
                assert_eq!(restart.parallel, target);
                // Checkpoints land at steps 2, 4, 6; the latest committed
                // step before the kill is the resume point.
                let expected_resume = (kill_step / SAVE_EVERY) * SAVE_EVERY;
                assert_eq!(restart.resume_step, Some(expected_resume));
                assert_eq!(restart.lost_steps, kill_step - expected_resume);

                // Post-resume trajectory must be bitwise-equal to a
                // fault-free run resumed from the same committed
                // checkpoint under the same degraded topology.
                let reference = train_run(&TrainPlan {
                    config: TrainConfig::quick(ModelConfig::gpt3_tiny(), target, SEED),
                    until_iteration: ITERS,
                    resume: ResumeMode::Universal {
                        dir: dir.clone(),
                        step: expected_resume,
                    },
                    checkpoint_every: None,
                    checkpoint_dir: None,
                })
                .unwrap();
                let resumed = &report.final_segment().losses;
                assert_eq!(resumed.len(), reference.losses.len());
                for ((ia, la), (ib, lb)) in resumed.iter().zip(&reference.losses) {
                    assert_eq!(ia, ib);
                    assert_eq!(
                        la.to_bits(),
                        lb.to_bits(),
                        "cell s{kill_step}/{kind_label}/t{ti} iteration {ia}: \
                         resumed {la} != reference {lb}"
                    );
                }

                // The tree must be fsck-clean after the recovery.
                let fsck_report = fsck(&dir, &FsckOptions { repair: false }).unwrap();
                assert!(
                    fsck_report.clean(),
                    "cell s{kill_step}/{kind_label}/t{ti} left a dirty tree: {fsck_report:?}"
                );
                cells_run += 1;
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
    assert_eq!(cells_run, 12);
}

/// A kill before the first committed checkpoint restarts fresh under the
/// degraded topology — no checkpoint means losing all progress, not
/// deadlocking or giving up.
#[test]
fn kill_before_first_checkpoint_restarts_fresh() {
    let _guard = test_guard();
    let dir = tmp("fresh_restart");
    let source = source_topology();
    let target = ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1);
    let plan = TrainPlan {
        config: TrainConfig::quick(ModelConfig::gpt3_tiny(), source, SEED),
        until_iteration: 4,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(4),
        checkpoint_dir: Some(dir.clone()),
    };
    let opts = SupervisorOptions {
        deadline: DEADLINE,
        hot_replicas: None,
        max_restarts: 2,
        ladder: vec![target],
        faults: vec![RankFault {
            rank: 0,
            step: 1,
            kind: FaultKind::Panic,
        }],
    };
    let report = supervise(&plan, &opts).unwrap();
    assert_eq!(report.restarts.len(), 1);
    assert_eq!(report.restarts[0].resume_step, None);
    assert_eq!(report.restarts[0].lost_steps, 1);
    // The fresh restart under the degraded topology matches a plain fresh
    // run bitwise.
    let reference = train_run(&TrainPlan::simple(
        TrainConfig::quick(ModelConfig::gpt3_tiny(), target, SEED),
        4,
    ))
    .unwrap();
    let resumed = &report.final_segment().losses;
    assert_eq!(resumed.len(), reference.losses.len());
    for ((ia, la), (ib, lb)) in resumed.iter().zip(&reference.losses) {
        assert_eq!(ia, ib);
        assert_eq!(la.to_bits(), lb.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two sequential faults consume two rungs of the ladder: the run first
/// degrades TP2xPP1xDP2 -> TP2xPP1xDP1, is killed again, and finishes on
/// the final single-rank rung — the paper's repeated-shrink scenario.
#[test]
fn repeated_failures_walk_down_the_ladder() {
    let _guard = test_guard();
    let dir = tmp("ladder_walk");
    let source = source_topology();
    let rung1 = ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1);
    let rung2 = ParallelConfig::single();
    let plan = TrainPlan {
        config: TrainConfig::quick(ModelConfig::gpt3_tiny(), source, SEED),
        until_iteration: 8,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.clone()),
    };
    let opts = SupervisorOptions {
        deadline: DEADLINE,
        hot_replicas: None,
        max_restarts: 3,
        ladder: vec![rung1, rung2],
        faults: vec![
            RankFault {
                rank: 3,
                step: 3,
                kind: FaultKind::Panic,
            },
            // Fires in the rung1 segment (2 ranks), killing rank 1.
            RankFault {
                rank: 1,
                step: 5,
                kind: FaultKind::Hang,
            },
        ],
    };
    let report = supervise(&plan, &opts).unwrap();
    assert_eq!(report.restarts.len(), 2);
    assert_eq!(report.restarts[0].parallel, rung1);
    assert_eq!(report.restarts[0].resume_step, Some(2));
    assert_eq!(report.restarts[1].parallel, rung2);
    assert_eq!(report.restarts[1].resume_step, Some(4));
    let last = report.final_segment();
    assert_eq!(last.start_iteration, 4);
    assert_eq!(last.losses.last().unwrap().0, 8);
    // Reference: fault-free single-rank run from the step-4 universal
    // checkpoint the second recovery produced.
    let reference = train_run(&TrainPlan {
        config: TrainConfig::quick(ModelConfig::gpt3_tiny(), rung2, SEED),
        until_iteration: 8,
        resume: ResumeMode::Universal {
            dir: dir.clone(),
            step: 4,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap();
    for ((ia, la), (ib, lb)) in last.losses.iter().zip(&reference.losses) {
        assert_eq!(ia, ib);
        assert_eq!(la.to_bits(), lb.to_bits());
    }
    assert!(fsck(&dir, &FsckOptions { repair: false }).unwrap().clean());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The telemetry recovery counters are recorded when the global recorder
/// is enabled during a supervised recovery.
#[test]
fn recovery_counters_are_recorded() {
    let _guard = test_guard();
    let dir = tmp("telemetry");
    let plan = TrainPlan {
        config: TrainConfig::quick(
            ModelConfig::gpt3_tiny(),
            ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
            SEED,
        ),
        until_iteration: 6,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.clone()),
    };
    let opts = SupervisorOptions {
        deadline: DEADLINE,
        hot_replicas: None,
        max_restarts: 2,
        ladder: vec![ParallelConfig::single()],
        faults: vec![RankFault {
            rank: 1,
            step: 3,
            kind: FaultKind::Panic,
        }],
    };
    let rec = ucp_repro::telemetry::global();
    rec.reset();
    rec.set_enabled(true);
    let report = supervise(&plan, &opts).unwrap();
    let metrics = rec.report("elastic_recovery_test");
    rec.set_enabled(false);
    assert_eq!(report.restarts.len(), 1);
    let counter = |name: &str| {
        metrics
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    assert_eq!(counter("recovery/failures"), 1);
    assert_eq!(counter("recovery/restarts"), 1);
    assert_eq!(counter("recovery/lost_steps"), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `UCP_RANK_FAULTS` clause syntax parses into the same schedule the
/// programmatic API takes ([`supervise`] merges both sources).
#[test]
fn parse_faults_roundtrip_matches_env_syntax() {
    let faults =
        ucp_repro::trainer::parse_faults("rank=3,step=4,kind=hang;rank=0,step=2,kind=slow:50")
            .unwrap();
    assert_eq!(
        faults,
        vec![
            RankFault {
                rank: 3,
                step: 4,
                kind: FaultKind::Hang
            },
            RankFault {
                rank: 0,
                step: 2,
                kind: FaultKind::SlowMs(50)
            },
        ]
    );
}
