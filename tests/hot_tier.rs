//! Peer-replicated hot checkpoint tier: tiered recovery (RAM → disk).
//!
//! The hot tier replicates each rank's optimizer shard to K peers in RAM
//! every save; a supervised recovery must serve the resume state from the
//! surviving replicas when the lost set fits inside K, and fall back to
//! the committed disk checkpoint — without data loss — when it does not.
//! These tests pin down both directions plus the acceptance invariants:
//!
//! - a single-rank kill recovers from **peer memory**, and the resumed
//!   loss trajectory is bitwise-equal to a fault-free run resumed from
//!   the *disk* checkpoint of the same step (the RAM-assembled universal
//!   checkpoint is bit-identical to the converted one);
//! - a double fault (lost set 2 > K=1) cleanly falls back to **disk**,
//!   again bitwise-equal, ticking `recovery/fallback_disk`;
//! - killing a rank together with its only replica holder (replica-owner
//!   dead) also falls back to disk;
//! - the journal records the `hot_replicated` / `hot_recovery_begin` /
//!   `hot_recovery_end` lifecycle and attributes `recovery_end` to the
//!   tier that actually served.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

use ucp_repro::core::fsck::{fsck, FsckOptions};
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::storage::journal;
use ucp_repro::trainer::supervisor::{supervise, FaultKind, RankFault, SupervisorOptions};
use ucp_repro::trainer::{train_run, ResumeMode, TrainConfig, TrainPlan};

const ITERS: u64 = 6;
const SAVE_EVERY: u64 = 2;
const SEED: u64 = 7117;
const DEADLINE: Duration = Duration::from_secs(2);

/// Serializes the tests: several read the process-global telemetry
/// recorder, which a concurrent supervised recovery would also touch.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_hot_tier_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn source_topology() -> ParallelConfig {
    // 4 ranks: TP2 x PP1 x DP2.
    ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1)
}

fn hot_plan(dir: &PathBuf) -> TrainPlan {
    TrainPlan {
        config: TrainConfig::quick(ModelConfig::gpt3_tiny(), source_topology(), SEED),
        until_iteration: ITERS,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(SAVE_EVERY),
        checkpoint_dir: Some(dir.clone()),
    }
}

fn hot_opts(target: ParallelConfig, faults: Vec<RankFault>) -> SupervisorOptions {
    SupervisorOptions {
        deadline: DEADLINE,
        max_restarts: 2,
        ladder: vec![target],
        faults,
        hot_replicas: Some(1),
    }
}

/// Reference trajectory: a fault-free run resumed from the *disk*
/// universal checkpoint at `step` under `target`. Converts first when the
/// universal tree is missing (a peer-memory recovery never touches it),
/// which makes the bitwise comparison a direct RAM-vs-disk equivalence
/// proof.
fn disk_reference(dir: &PathBuf, target: ParallelConfig, step: u64) -> Vec<(u64, f64)> {
    let universal = ucp_repro::storage::layout::universal_dir(dir, step);
    if !ucp_repro::storage::layout::manifest_path(&universal).exists() {
        ucp_repro::trainer::convert_checkpoint(
            dir,
            step,
            &ucp_repro::core::convert::ConvertOptions::default(),
        )
        .unwrap();
    }
    train_run(&TrainPlan {
        config: TrainConfig::quick(ModelConfig::gpt3_tiny(), target, SEED),
        until_iteration: ITERS,
        resume: ResumeMode::Universal {
            dir: dir.clone(),
            step,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap()
    .losses
}

fn assert_bitwise_equal(resumed: &[(u64, f64)], reference: &[(u64, f64)], label: &str) {
    assert_eq!(resumed.len(), reference.len(), "{label}: length mismatch");
    for ((ia, la), (ib, lb)) in resumed.iter().zip(reference) {
        assert_eq!(ia, ib, "{label}: iteration mismatch");
        assert_eq!(
            la.to_bits(),
            lb.to_bits(),
            "{label} iteration {ia}: resumed {la} != reference {lb}"
        );
    }
}

/// Single-rank kill, K = 1: recovery must come from peer memory, beat the
/// trip to disk entirely (no convert pass), and replay bitwise-equal to a
/// disk-resumed reference — including under a *reconfigured* (degraded)
/// topology, which exercises the shard remapping of the in-memory
/// universal checkpoint.
#[test]
fn single_kill_recovers_from_peer_memory_bitwise() {
    let _guard = test_guard();
    let source = source_topology();
    for (ti, target) in [
        ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1),
        ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
    ]
    .into_iter()
    .enumerate()
    {
        let dir = tmp(&format!("peer_t{ti}"));
        let rec = ucp_repro::telemetry::global();
        rec.reset();
        rec.set_enabled(true);
        let report = supervise(
            &hot_plan(&dir),
            &hot_opts(
                target,
                vec![RankFault {
                    rank: source.world_size() - 1,
                    step: 3,
                    kind: FaultKind::Panic,
                }],
            ),
        )
        .unwrap();
        let metrics = rec.report("hot_single");
        rec.set_enabled(false);

        assert_eq!(report.restarts.len(), 1);
        let restart = &report.restarts[0];
        assert_eq!(restart.source, "peer", "expected a RAM-served recovery");
        assert_eq!(restart.resume_step, Some(2));
        assert_eq!(restart.lost_steps, 1);
        assert_eq!(restart.parallel, target);

        let counter = |name: &str| {
            metrics
                .counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.value)
        };
        assert_eq!(counter("recovery/source_peer"), 1);
        assert_eq!(counter("recovery/fallback_disk"), 0);
        // The peer path never ran the convert pass.
        assert_eq!(counter("recovery/convert_skipped"), 0);

        // Bitwise equivalence against the disk tier (converted on demand).
        let reference = disk_reference(&dir, target, 2);
        assert_bitwise_equal(
            &report.final_segment().losses,
            &reference,
            &format!("peer_t{ti}"),
        );

        // Journal lifecycle: replication waves at both save boundaries of
        // the first segment, one hot recovery that did NOT fall back, and
        // a recovery_end attributed to the peer tier.
        let j = journal::read(&dir).unwrap();
        assert!(j.of_kind("hot_replicated").count() >= 1);
        assert_eq!(j.of_kind("hot_recovery_begin").count(), 1);
        let hot_ends: Vec<_> = j.of_kind("hot_recovery_end").collect();
        assert_eq!(hot_ends.len(), 1);
        match &hot_ends[0].event {
            journal::JournalEvent::HotRecoveryEnd {
                served_ranks,
                fallback,
            } => {
                assert!(!fallback);
                assert!(!served_ranks.is_empty());
                assert!(
                    !served_ranks.contains(&(source.world_size() - 1)),
                    "the dead rank cannot serve replicas: {served_ranks:?}"
                );
            }
            other => panic!("unexpected event {other:?}"),
        }
        match &j.of_kind("recovery_end").next().unwrap().event {
            journal::JournalEvent::RecoveryEnd { source, .. } => assert_eq!(source, "peer"),
            other => panic!("unexpected event {other:?}"),
        }
        assert!(fsck(&dir, &FsckOptions { repair: false }).unwrap().clean());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Double fault with K = 1: the lost set (2 consecutive ranks) exceeds the
/// replication factor, so every copy of the first victim's shard is gone —
/// the recovery must fall back to disk, tick `recovery/fallback_disk`,
/// and still replay bitwise-equal with no data loss.
#[test]
fn double_fault_falls_back_to_disk_bitwise() {
    let _guard = test_guard();
    let source = source_topology();
    let target = ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1);
    let dir = tmp("double_fault");
    let rec = ucp_repro::telemetry::global();
    rec.reset();
    rec.set_enabled(true);
    // Ranks 2 and 3 die at the same step: rank 2's only replica holder
    // (rank 3) is part of the lost set.
    let report = supervise(
        &hot_plan(&dir),
        &hot_opts(
            target,
            vec![
                RankFault {
                    rank: 3,
                    step: 3,
                    kind: FaultKind::Panic,
                },
                RankFault {
                    rank: 2,
                    step: 3,
                    kind: FaultKind::Panic,
                },
            ],
        ),
    )
    .unwrap();
    let metrics = rec.report("hot_double");
    rec.set_enabled(false);

    // One recovery cycle: the supervisor models the co-scheduled faults as
    // a single lost set instead of burning a restart per kill.
    assert_eq!(report.restarts.len(), 1);
    let restart = &report.restarts[0];
    assert_eq!(restart.source, "disk", "2 faults > K=1 must go to disk");
    assert_eq!(restart.resume_step, Some(2));
    let counter = |name: &str| {
        metrics
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    assert_eq!(counter("recovery/fallback_disk"), 1);
    assert_eq!(counter("recovery/source_peer"), 0);

    let reference = disk_reference(&dir, target, 2);
    assert_bitwise_equal(&report.final_segment().losses, &reference, "double_fault");

    let j = journal::read(&dir).unwrap();
    let hot_ends: Vec<_> = j.of_kind("hot_recovery_end").collect();
    assert_eq!(hot_ends.len(), 1);
    assert!(matches!(
        &hot_ends[0].event,
        journal::JournalEvent::HotRecoveryEnd { fallback: true, .. }
    ));
    match &j.of_kind("recovery_end").next().unwrap().event {
        journal::JournalEvent::RecoveryEnd { source, .. } => assert_eq!(source, "disk"),
        other => panic!("unexpected event {other:?}"),
    }
    assert!(fsck(&dir, &FsckOptions { repair: false }).unwrap().clean());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replica-owner-dead: the failing rank's unique holder (K = 1) dies in
/// the same lost set even though the two are not the "top N" ranks — the
/// tier must detect the hole and fall back to disk.
#[test]
fn replica_owner_dead_falls_back_to_disk() {
    let _guard = test_guard();
    let target = ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1);
    let dir = tmp("owner_dead");
    // holders_of(3) = {0} with K=1 on 4 ranks: kill 3 and its holder 0.
    let report = supervise(
        &hot_plan(&dir),
        &hot_opts(
            target,
            vec![
                RankFault {
                    rank: 3,
                    step: 3,
                    kind: FaultKind::Panic,
                },
                RankFault {
                    rank: 0,
                    step: 3,
                    kind: FaultKind::Panic,
                },
            ],
        ),
    )
    .unwrap();
    assert_eq!(report.restarts.len(), 1);
    assert_eq!(report.restarts[0].source, "disk");
    assert_eq!(report.restarts[0].resume_step, Some(2));
    let reference = disk_reference(&dir, target, 2);
    assert_bitwise_equal(&report.final_segment().losses, &reference, "owner_dead");
    let _ = std::fs::remove_dir_all(&dir);
}

/// K = 2 absorbs the same double fault that K = 1 could not: the lost set
/// {2, 3} leaves rank 2's second holder (rank 0) and rank 3's (ranks 0,
/// 1) alive, so recovery stays in RAM.
#[test]
fn wider_replication_absorbs_the_double_fault() {
    let _guard = test_guard();
    let target = ParallelConfig::new(1, 1, 4, 1, ZeroStage::Zero1);
    let dir = tmp("k2_double");
    let mut opts = hot_opts(
        target,
        vec![
            RankFault {
                rank: 3,
                step: 3,
                kind: FaultKind::Panic,
            },
            RankFault {
                rank: 2,
                step: 3,
                kind: FaultKind::Panic,
            },
        ],
    );
    opts.hot_replicas = Some(2);
    let report = supervise(&hot_plan(&dir), &opts).unwrap();
    assert_eq!(report.restarts.len(), 1);
    assert_eq!(report.restarts[0].source, "peer");
    assert_eq!(report.restarts[0].resume_step, Some(2));
    let reference = disk_reference(&dir, target, 2);
    assert_bitwise_equal(&report.final_segment().losses, &reference, "k2_double");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A kill before any save boundary: no replicas AND no disk checkpoint —
/// the run restarts fresh under the degraded topology, attributed to the
/// disk tier (the hot lookup came up empty, not wrong).
#[test]
fn kill_before_first_save_restarts_fresh() {
    let _guard = test_guard();
    let target = ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1);
    let dir = tmp("pre_save");
    let report = supervise(
        &hot_plan(&dir),
        &hot_opts(
            target,
            vec![RankFault {
                rank: 3,
                step: 1,
                kind: FaultKind::Panic,
            }],
        ),
    )
    .unwrap();
    assert_eq!(report.restarts.len(), 1);
    assert_eq!(report.restarts[0].source, "disk");
    assert_eq!(report.restarts[0].resume_step, None);
    // Fresh restart under the degraded topology matches a plain fresh run.
    let reference = train_run(&TrainPlan::simple(
        TrainConfig::quick(ModelConfig::gpt3_tiny(), target, SEED),
        ITERS,
    ))
    .unwrap();
    assert_bitwise_equal(
        &report.final_segment().losses,
        &reference.losses,
        "pre_save",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The supervisor rejects invalid replication factors up front, matching
/// the CLI's reject-don't-clamp convention.
#[test]
fn invalid_replication_factors_are_rejected() {
    let _guard = test_guard();
    let dir = tmp("bad_factor");
    let plan = hot_plan(&dir);
    // K = 0 is a contradiction.
    let mut opts = hot_opts(ParallelConfig::single(), Vec::new());
    opts.hot_replicas = Some(0);
    let err = supervise(&plan, &opts).unwrap_err();
    assert!(err.to_string().contains("hot_replicas"), "{err}");
    // K >= the smallest world size in the ladder wraps the ring.
    let mut opts = hot_opts(ParallelConfig::single(), Vec::new());
    opts.hot_replicas = Some(1); // ladder rung is 1 rank
    let err = supervise(&plan, &opts).unwrap_err();
    assert!(err.to_string().contains("smallest world size"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
