//! Integration tests for the `ucp` command-line tool (the
//! `ds_to_universal.py` counterpart): convert, inspect, and plan against a
//! real checkpoint.

use ucp_cli::args::{parse, Parsed};
use ucp_cli::commands;
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::storage::layout;
use ucp_repro::trainer::{train_run, ResumeMode, TrainConfig, TrainPlan};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_it_cli_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn make_checkpoint(name: &str) -> std::path::PathBuf {
    let dir = scratch(name);
    let cfg = TrainConfig::quick(
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1),
        33,
    );
    train_run(&TrainPlan {
        config: cfg,
        until_iteration: 2,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    dir
}

fn flags(args: &[&str]) -> Parsed {
    parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
}

#[test]
fn convert_then_inspect_then_plan() {
    let dir = make_checkpoint("full_flow");
    let dir_s = dir.to_string_lossy().to_string();

    // Convert resolves the step from the `latest` marker.
    commands::convert(&flags(&["--dir", &dir_s, "--workers", "2"])).unwrap();
    assert!(layout::universal_dir(&dir, 2).is_dir());

    // Inspect both halves.
    commands::inspect(&flags(&["--dir", &dir_s])).unwrap();

    // Plan for a reconfigured target.
    commands::plan(&flags(&[
        "--dir", &dir_s, "--step", "2", "--tp", "1", "--pp", "2", "--dp", "2", "--zero", "2",
        "--rank", "3",
    ]))
    .unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn convert_with_spill_and_no_verify() {
    let dir = make_checkpoint("spill");
    let dir_s = dir.to_string_lossy().to_string();
    commands::convert(&flags(&[
        "--dir",
        &dir_s,
        "--step",
        "2",
        "--spill",
        "--no-verify",
    ]))
    .unwrap();
    assert!(layout::universal_dir(&dir, 2)
        .join("manifest.ucpt")
        .is_file());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plan_rejects_out_of_range_rank() {
    let dir = make_checkpoint("bad_rank");
    let dir_s = dir.to_string_lossy().to_string();
    commands::convert(&flags(&["--dir", &dir_s])).unwrap();
    let err = commands::plan(&flags(&[
        "--dir", &dir_s, "--step", "2", "--tp", "1", "--pp", "1", "--dp", "1", "--rank", "5",
    ]))
    .unwrap_err();
    assert!(err.contains("out of range"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_dir_and_step_errors() {
    assert!(commands::convert(&flags(&[])).is_err());
    let empty = scratch("empty");
    let err = commands::convert(&flags(&["--dir", &empty.to_string_lossy()])).unwrap_err();
    assert!(err.contains("latest"), "{err}");
    std::fs::remove_dir_all(&empty).ok();
}

#[test]
fn verify_passes_then_detects_corruption() {
    let dir = make_checkpoint("verify");
    let dir_s = dir.to_string_lossy().to_string();
    commands::convert(&flags(&["--dir", &dir_s])).unwrap();
    commands::verify(&flags(&["--dir", &dir_s, "--step", "2"])).unwrap();

    // Flip a byte in one optimizer file.
    let victim = layout::optim_states_path(&layout::step_dir(&dir, 2), 0, 0, 0);
    let mut bytes = std::fs::read(&victim).unwrap();
    let n = bytes.len();
    bytes[n - 8] ^= 0x20;
    std::fs::write(&victim, bytes).unwrap();
    let err = commands::verify(&flags(&["--dir", &dir_s, "--step", "2"])).unwrap_err();
    assert!(err.contains("failed verification"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fsck_clean_tree_succeeds_and_corrupt_tree_fails() {
    let dir = make_checkpoint("fsck");
    let dir_s = dir.to_string_lossy().to_string();
    // Clean tree: Ok (exit 0 through main's dispatch).
    commands::fsck(&flags(&["--dir", &dir_s])).unwrap();
    commands::fsck(&flags(&["--dir", &dir_s, "--json"])).unwrap();

    // Corrupt one file: Err (non-zero exit), tree quarantined.
    let victim = layout::optim_states_path(&layout::step_dir(&dir, 2), 1, 0, 0);
    let mut bytes = std::fs::read(&victim).unwrap();
    let n = bytes.len();
    bytes[n / 2] ^= 0x01;
    std::fs::write(&victim, bytes).unwrap();
    let err = commands::fsck(&flags(&["--dir", &dir_s])).unwrap_err();
    assert!(err.contains("problem"), "{err}");
    assert!(dir.join("global_step2.corrupt").is_dir());
    assert!(!layout::step_dir(&dir, 2).exists());

    // The quarantine fixed the tree: a second pass is clean.
    commands::fsck(&flags(&["--dir", &dir_s])).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fsck_no_repair_leaves_tree_alone() {
    let dir = make_checkpoint("fsck_norepair");
    let dir_s = dir.to_string_lossy().to_string();
    let victim = layout::model_states_path(&layout::step_dir(&dir, 2), 0, 0);
    let mut bytes = std::fs::read(&victim).unwrap();
    let n = bytes.len();
    bytes[n / 2] ^= 0x01;
    std::fs::write(&victim, bytes).unwrap();
    let err = commands::fsck(&flags(&["--dir", &dir_s, "--no-repair"])).unwrap_err();
    assert!(err.contains("problem"), "{err}");
    assert!(layout::step_dir(&dir, 2).is_dir());
    assert!(!dir.join("global_step2.corrupt").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn prune_respects_policy() {
    let dir = scratch("prune");
    let dir_s = dir.to_string_lossy().to_string();
    // Three checkpoints at steps 1, 2, 3.
    let cfg = TrainConfig::quick(
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
        34,
    );
    train_run(&TrainPlan {
        config: cfg,
        until_iteration: 3,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(1),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    assert_eq!(
        ucp_repro::storage::retention::list_steps(&dir),
        vec![1, 2, 3]
    );
    commands::prune(&flags(&["--dir", &dir_s, "--keep-last", "1"])).unwrap();
    assert_eq!(ucp_repro::storage::retention::list_steps(&dir), vec![3]);
    // Missing policy flag errors.
    assert!(commands::prune(&flags(&["--dir", &dir_s])).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_detects_equal_and_different_checkpoints() {
    // Two identically-seeded runs convert to identical universal trees; a
    // differently-seeded run differs.
    let mk = |name: &str, seed: u64| {
        let dir = scratch(name);
        let cfg = TrainConfig::quick(
            ModelConfig::gpt3_tiny(),
            ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
            seed,
        );
        train_run(&TrainPlan {
            config: cfg,
            until_iteration: 2,
            resume: ResumeMode::Fresh,
            checkpoint_every: Some(2),
            checkpoint_dir: Some(dir.clone()),
        })
        .unwrap();
        commands::convert(&flags(&["--dir", &dir.to_string_lossy()])).unwrap();
        dir
    };
    let a = mk("diff_a", 70);
    let b = mk("diff_b", 70);
    let c = mk("diff_c", 71);
    let ua = layout::universal_dir(&a, 2).to_string_lossy().to_string();
    let ub = layout::universal_dir(&b, 2).to_string_lossy().to_string();
    let uc = layout::universal_dir(&c, 2).to_string_lossy().to_string();
    commands::diff(&flags(&["--dir", &ua, "--other", &ub])).unwrap();
    let err = commands::diff(&flags(&["--dir", &ua, "--other", &uc])).unwrap_err();
    assert!(err.contains("differences"), "{err}");
    // A huge tolerance swallows the differences.
    commands::diff(&flags(&[
        "--dir",
        &ua,
        "--other",
        &uc,
        "--tolerance",
        "1000",
    ]))
    .unwrap();
    for d in [a, b, c] {
        std::fs::remove_dir_all(&d).ok();
    }
}
