//! Failure injection: corruption, missing files, and truncation must be
//! detected loudly, never silently absorbed into training state.

use ucp_repro::core::convert::{convert_to_universal, ConvertOptions};
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::storage::layout;
use ucp_repro::trainer::{train_run, ResumeMode, TrainConfig, TrainPlan};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_it_fail_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn make_checkpoint(name: &str) -> std::path::PathBuf {
    let dir = scratch(name);
    let cfg = TrainConfig::quick(
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
        21,
    );
    train_run(&TrainPlan {
        config: cfg,
        until_iteration: 2,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    dir
}

/// Flip one bit deep inside a file's payload.
fn corrupt(path: &std::path::Path) {
    let mut bytes = std::fs::read(path).unwrap();
    let idx = bytes.len() * 3 / 4;
    bytes[idx] ^= 0x40;
    std::fs::write(path, bytes).unwrap();
}

#[test]
fn corrupted_optim_chunk_fails_conversion() {
    let dir = make_checkpoint("corrupt_optim");
    let victim = layout::optim_states_path(&layout::step_dir(&dir, 2), 1, 0, 0);
    corrupt(&victim);
    let err = convert_to_universal(&dir, 2, &ConvertOptions::default()).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("checksum") || msg.contains("malformed") || msg.contains("corrupt"),
        "unexpected error: {msg}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_atom_fails_load() {
    let dir = make_checkpoint("corrupt_atom");
    convert_to_universal(&dir, 2, &ConvertOptions::default()).unwrap();
    let victim = layout::atom_path(
        &layout::universal_dir(&dir, 2),
        "lm_head.weight",
        layout::AtomFile::ExpAvg,
    );
    corrupt(&victim);
    let err = train_run(&TrainPlan {
        config: TrainConfig::quick(
            ModelConfig::gpt3_tiny(),
            ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
            21,
        ),
        until_iteration: 4,
        resume: ResumeMode::Universal {
            dir: dir.clone(),
            step: 2,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap_err();
    assert!(err.to_string().contains("checksum"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_atom_fails_load_with_clear_error() {
    let dir = make_checkpoint("missing_atom");
    convert_to_universal(&dir, 2, &ConvertOptions::default()).unwrap();
    let victim = layout::atom_dir(
        &layout::universal_dir(&dir, 2),
        "layers.3.mlp.dense_h_to_4h.weight",
    );
    std::fs::remove_dir_all(&victim).unwrap();
    let err = train_run(&TrainPlan {
        config: TrainConfig::quick(
            ModelConfig::gpt3_tiny(),
            ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1),
            21,
        ),
        until_iteration: 4,
        resume: ResumeMode::Universal {
            dir: dir.clone(),
            step: 2,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap_err();
    assert!(err.to_string().contains("io error"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_manifest_detected() {
    let dir = make_checkpoint("trunc_manifest");
    convert_to_universal(&dir, 2, &ConvertOptions::default()).unwrap();
    let manifest_path = layout::manifest_path(&layout::universal_dir(&dir, 2));
    let bytes = std::fs::read(&manifest_path).unwrap();
    std::fs::write(&manifest_path, &bytes[..bytes.len() / 2]).unwrap();
    let err = train_run(&TrainPlan {
        config: TrainConfig::quick(
            ModelConfig::gpt3_tiny(),
            ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
            21,
        ),
        until_iteration: 4,
        resume: ResumeMode::Universal {
            dir: dir.clone(),
            step: 2,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap_err();
    assert!(!err.to_string().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_checkpoint_step_is_a_clean_error() {
    let dir = scratch("missing_step");
    let err = convert_to_universal(&dir, 7, &ConvertOptions::default()).unwrap_err();
    assert!(err.to_string().contains("io error"), "{err}");
    let err = train_run(&TrainPlan {
        config: TrainConfig::quick(ModelConfig::gpt3_tiny(), ParallelConfig::single(), 1),
        until_iteration: 1,
        resume: ResumeMode::Native {
            dir: dir.clone(),
            step: 7,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap_err();
    assert!(err.to_string().contains("checkpoint"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_with_wrong_architecture_is_rejected() {
    let dir = make_checkpoint("wrong_arch");
    convert_to_universal(&dir, 2, &ConvertOptions::default()).unwrap();
    // Llama-tiny has different parameters entirely.
    let err = train_run(&TrainPlan {
        config: TrainConfig::quick(ModelConfig::llama_tiny(), ParallelConfig::single(), 21),
        until_iteration: 4,
        resume: ResumeMode::Universal {
            dir: dir.clone(),
            step: 2,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap_err();
    assert!(err.to_string().contains("architecture differs"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_with_indivisible_target_is_rejected() {
    let dir = make_checkpoint("bad_target");
    convert_to_universal(&dir, 2, &ConvertOptions::default()).unwrap();
    // PP=3 does not divide 8 layers.
    let cfg = TrainConfig::quick(
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(1, 3, 1, 1, ZeroStage::Zero1),
        21,
    );
    let err = train_run(&TrainPlan {
        config: cfg,
        until_iteration: 4,
        resume: ResumeMode::Universal {
            dir: dir.clone(),
            step: 2,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap_err();
    assert!(err.to_string().contains("divisible"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
