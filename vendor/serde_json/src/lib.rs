//! Vendored stand-in for `serde_json` (offline build).
//!
//! Full JSON text parsing and printing over the vendored `serde` value
//! model. Output conventions follow upstream serde_json: compact form has
//! no whitespace, pretty form indents with two spaces, floats always
//! carry a decimal point or exponent (`1.0`, not `1`), and strings escape
//! control characters with `\uXXXX`.

pub use serde::{Error, Value};

use std::fmt::Write as _;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

// ---- Printer ------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() || f.is_infinite() {
        // JSON has no non-finite literals; serde_json emits null.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Match serde_json: floats are always visibly floats.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- Parser -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected character `{}`", other as char))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if width == 0 || end > self.bytes.len() {
                        return Err(self.err("invalid UTF-8 in string"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(n) = digits.parse::<u64>() {
                    if let Ok(i) = i64::try_from(n) {
                        return Ok(Value::Int(-i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

/// Byte length of the UTF-8 sequence introduced by `first`, 0 if invalid.
fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi\n").unwrap(), "\"hi\\n\"");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f32>("1.5e2").unwrap(), 150.0);
        assert_eq!(from_str::<String>("\"a\\u0041b\"").unwrap(), "aAb");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<u32> = vec![1, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let v: Vec<u32> = vec![1];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }

    #[test]
    fn malformed_input_errors_cleanly() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("4x").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<u32>("1 2").is_err());
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let s = "héllo → 世界";
        let enc = to_string(s).unwrap();
        assert_eq!(from_str::<String>(&enc).unwrap(), s);
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
