//! Vendored stand-in for `crossbeam` (offline build).
//!
//! Provides the two crossbeam APIs UCP uses, backed by std:
//!
//! - `crossbeam::channel::unbounded` → `std::sync::mpsc::channel`, with a
//!   cloneable `Receiver` wrapper (UCP never clones receivers, but the
//!   sender side must be `Clone` like crossbeam's).
//! - `crossbeam::thread::scope` → `std::thread::scope`, keeping
//!   crossbeam's signatures: the scope closure receives a `&Scope`, spawn
//!   closures take the scope as an argument, `scope()` returns a
//!   `thread::Result`, and handles expose `join() -> thread::Result<T>`.
//!
//! Divergence note: crossbeam's `scope` catches panics from unjoined
//! threads and reports them through its `Err` value; here an unjoined
//! panicking thread propagates the panic out of `scope` itself (std
//! semantics). Both abort the calling test/job, which is the behavior UCP
//! relies on.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel. Cloneable, like crossbeam's.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side has disconnected.
    pub type SendError<T> = mpsc::SendError<T>;
    /// Error returned when all senders have disconnected.
    pub type RecvError = mpsc::RecvError;
    pub type TryRecvError = mpsc::TryRecvError;
    /// Error returned by [`Receiver::recv_timeout`]: either the wait timed
    /// out or all senders have disconnected.
    pub type RecvTimeoutError = mpsc::RecvTimeoutError;

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn recv_timeout(
            &self,
            timeout: std::time::Duration,
        ) -> Result<T, mpsc::RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

pub mod thread {
    use std::thread as stdthread;

    /// A scope for spawning borrowing threads (crossbeam-shaped facade
    /// over `std::thread::Scope`).
    pub struct Scope<'scope, 'env: 'scope>(&'scope stdthread::Scope<'scope, 'env>);

    /// Handle to a scoped thread; `join` returns `Err` if the thread
    /// panicked.
    pub struct ScopedJoinHandle<'scope, T>(stdthread::ScopedJoinHandle<'scope, T>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// (crossbeam convention) so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> stdthread::Result<T> {
            self.0.join()
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned; all
    /// threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> stdthread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_is_fifo() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_to_disconnected_receiver_errors() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scope_joins_and_borrows() {
        let data = vec![1u64, 2, 3];
        let total = thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|v| scope.spawn(move |_| v * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 12);
    }

    #[test]
    fn joined_panic_surfaces_as_err() {
        let r = thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            h.join().is_err()
        })
        .unwrap();
        assert!(r);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = thread::scope(|scope| {
            let h = scope.spawn(|inner| {
                let h2 = inner.spawn(|_| 21u32);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
