//! Vendored stand-in for `proptest` (offline build).
//!
//! A deterministic randomized property-testing harness implementing the
//! strategy surface UCP's tests use: integer/float ranges, tuples,
//! `collection::vec`, a character-class subset of string regex
//! strategies, `prop_map`, `bool::ANY`, and the `proptest!` /
//! `prop_assert*` macros. Unlike upstream there is no shrinking: failures
//! report the case's seed and values, which — with the fixed per-test
//! seeding — reproduce exactly on rerun. Case inputs derive from a hash
//! of the test's module path and name, so runs are stable across
//! processes and machines.

use std::ops::Range;

/// Deterministic RNG (splitmix64) seeded per test case.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identity and case index.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Rejection sampling to stay unbiased.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// String strategy from a regex subset: literal characters, `[...]`
/// character classes (with `a-z` ranges), and `{m}` / `{m,n}` / `*` /
/// `+` / `?` repetition. Enough for patterns like `"[abc]{1,3}"`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal.
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `[` in strategy regex {self:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.extend(char::from_u32(c));
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional repetition suffix.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `{{` in strategy regex {self:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("regex repeat min"),
                        hi.trim().parse().expect("regex repeat max"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("regex repeat count");
                        (n, n)
                    }
                }
            } else if i < chars.len() && matches!(chars[i], '*' | '+' | '?') {
                let suffix = chars[i];
                i += 1;
                match suffix {
                    '*' => (0, 8),
                    '+' => (1, 8),
                    _ => (0, 1),
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// `proptest::bool::ANY` — uniform true/false.
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; the simulator-heavy properties here
        // make that needlessly slow, and determinism means extra cases
        // add no flake protection.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Define property tests. Each `name in strategy` binding draws from the
/// per-case RNG; `prop_assert*` failures abort the case with a message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($p:pat_param in $s:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..(__config.cases as u64) {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ($($p,)+) =
                        ($( $crate::Strategy::generate(&($s), &mut __rng), )+);
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "proptest {} case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            __msg
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                __left, __right, stringify!($left), stringify!($right)));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err(format!(
                "{}: `{:?}` != `{:?}`", format!($($fmt)+), __left, __right));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __left, __right
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..200 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f32..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn regex_subset_generates_in_language() {
        let mut rng = TestRng::for_case("regex", 0);
        for _ in 0..100 {
            let s = "[abc]{1,3}".generate(&mut rng);
            assert!((1..=3).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| "abc".contains(c)), "{s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn vec_strategy_obeys_len(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuple_and_map_compose(
            (a, b) in (0u64..10, 0u64..10),
            s in "[xy]{2}".prop_map(|s| s.len()),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(s, 2);
        }
    }
}
