//! Vendored stand-in for `serde` (offline build).
//!
//! The real serde is format-agnostic; UCP only ever serializes to JSON via
//! `serde_json`, so this stand-in collapses the data-model layer to a
//! single JSON [`Value`] tree. `Serialize` renders into a `Value`,
//! `Deserialize` reads back out of one, and the companion `serde_derive`
//! proc-macro generates both impls for plain structs and enums with the
//! same on-the-wire conventions as upstream serde_json:
//!
//! - structs → objects with fields in declaration order
//! - newtype structs → the inner value, transparently
//! - unit enum variants → `"VariantName"`
//! - newtype enum variants → `{"VariantName": value}` (externally tagged)
//! - struct enum variants → `{"VariantName": {..fields..}}`
//! - `Option::None` → `null`, and a *missing* object field deserializes
//!   to `None` (matching serde's derived behavior for `Option` fields)
//!
//! Only the surface UCP uses is implemented; `#[serde(...)]` attributes
//! are not supported (the codebase uses none).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value: the single data model this serde speaks.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integer (how the parser reports unsigned literals).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Key/value pairs in insertion order (serde_json preserves struct
    /// field order the same way).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Short description of the value's type for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error (also re-exported as
/// `serde_json::Error`).
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }

    pub fn expected(what: &'static str, got: &Value) -> Error {
        Error(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the JSON data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from the JSON data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Hook for a field absent from its enclosing object. Errors by
    /// default; `Option` overrides it to yield `None`.
    fn missing_field(field: &str, ty: &str) -> Result<Self, Error> {
        let _ = (field, ty);
        Err(Error::new(format!("missing field `{field}` in {ty}")))
    }
}

/// Helper used by derived `Deserialize` impls: fetch `key` from an object
/// body, falling back to [`Deserialize::missing_field`].
pub fn get_field<T: Deserialize>(obj: &[(String, Value)], key: &str, ty: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| Error::new(format!("field `{key}` in {ty}: {e}")))
        }
        None => T::missing_field(key, ty),
    }
}

// ---- Primitive impls ----------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n: u64 = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => return Err(Error::expected("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::new(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| Error::new(format!("integer {u} overflows i64")))?,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.3e18 => f as i64,
                    ref other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::new(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::UInt(u) => Ok(u as $t),
                    Value::Int(i) => Ok(i as $t),
                    ref other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str, _ty: &str) -> Result<Option<T>, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<String, V>, Error> {
        let pairs = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        pairs
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                let expected = [$($idx,)+].len();
                if items.len() != expected {
                    return Err(Error::new(format!(
                        "expected array of length {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_is_none() {
        let obj: Vec<(String, Value)> = vec![("a".into(), Value::UInt(1))];
        let got: Option<u32> = get_field(&obj, "absent", "T").unwrap();
        assert_eq!(got, None);
        let err = get_field::<u32>(&obj, "absent", "T");
        assert!(err.is_err());
    }

    #[test]
    fn integer_bounds_checked() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert_eq!(u8::from_value(&Value::UInt(255)).unwrap(), 255);
        assert_eq!(i32::from_value(&Value::Int(-5)).unwrap(), -5);
        assert!(u64::from_value(&Value::Int(-5)).is_err());
    }

    #[test]
    fn map_roundtrips_sorted() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), "2".to_string());
        m.insert("a".to_string(), "1".to_string());
        let v = m.to_value();
        let pairs = v.as_object().unwrap();
        assert_eq!(pairs[0].0, "a");
        let back: BTreeMap<String, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
