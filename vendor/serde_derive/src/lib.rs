//! Vendored stand-in for `serde_derive` (offline build).
//!
//! Derives `serde::Serialize` / `serde::Deserialize` for the shapes UCP
//! actually uses — plain (non-generic) structs, tuple structs, and enums
//! with unit / newtype / tuple / struct variants — by walking the raw
//! `proc_macro::TokenStream` directly instead of pulling in syn/quote.
//! `#[serde(...)]` attributes are not supported and `#[derive]` on a
//! generic type is a compile error; neither appears in this codebase.
//!
//! Wire conventions match upstream serde_json (externally tagged enums,
//! transparent newtype structs); see the crate docs on `serde` itself.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the fields of a struct or enum variant look like.
enum Fields {
    Unit,
    /// Tuple fields, by arity.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---- Parsing ------------------------------------------------------------

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consume leading `#[...]` attributes (doc comments arrive as
/// `#[doc = "..."]`) and any visibility qualifier.
fn skip_attrs_and_vis(it: &mut Tokens) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                // The attribute body: a bracket group.
                it.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let kind = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "derive: expected `struct` or `enum`, got {other:?}"
            ))
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("derive: expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "derive(Serialize/Deserialize): generic type `{name}` is not supported \
                 by the vendored serde_derive"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("derive: malformed struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("derive: malformed enum body: {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("derive: unsupported item kind `{other}`")),
    }
}

/// Parse `a: T, b: U, ...` returning field names. Commas nested inside
/// `<...>` generic arguments (e.g. `BTreeMap<String, String>`) are not
/// separators, so angle-bracket depth is tracked across punctuation.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut it = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("derive: expected field name, got {other:?}")),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "derive: expected `:` after `{name}`, got {other:?}"
                ))
            }
        }
        let mut angle_depth = 0i32;
        for tok in it.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Count the fields of a tuple struct/variant body (top-level commas,
/// angle-depth aware; trailing comma tolerated).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for tok in body {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    fields += 1;
                    saw_tokens = false;
                }
                _ => {}
            }
        }
    }
    fields + usize::from(saw_tokens)
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut it = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("derive: expected variant name, got {other:?}")),
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream())?);
                it.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                it.next();
                f
            }
            _ => Fields::Unit,
        };
        // Skip to the separating comma (tolerates `= discriminant`).
        for tok in it.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---- Codegen ------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => named_to_object(names, "self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                let arm = match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{vname}(ref __f0) => ::serde::Value::Object(vec![\
                         (\"{vname}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("ref __f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                             (\"{vname}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(fnames) => {
                        let binds: Vec<String> =
                            fnames.iter().map(|f| format!("ref {f}")).collect();
                        let obj = named_to_object(fnames, "");
                        format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![\
                             (\"{vname}\".to_string(), {obj})]),",
                            binds.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
                arms.push('\n');
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match *self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

/// `{a, b}` with an access prefix (`self.` or `` for match bindings) →
/// code building an insertion-ordered object.
fn named_to_object(names: &[String], prefix: &str) -> String {
    let pairs: Vec<String> = names
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&{prefix}{f}))"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                        .collect();
                    format!(
                        "let __arr = __v.as_array().ok_or_else(|| \
                             ::serde::Error::expected(\"array\", __v))?;\n\
                         if __arr.len() != {n} {{\n\
                             return Err(::serde::Error::new(format!(\
                                 \"expected {n} elements for {name}, got {{}}\", __arr.len())));\n\
                         }}\n\
                         Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Named(names) => named_from_object(name, &name.to_string(), names, "__v"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<{name}, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                        // serde also accepts {"Unit": null} from formats
                        // that can't emit bare strings; keep string-only.
                    }
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let __arr = __inner.as_array().ok_or_else(|| \
                                     ::serde::Error::expected(\"array\", __inner))?;\n\
                                 if __arr.len() != {n} {{\n\
                                     return Err(::serde::Error::new(format!(\
                                         \"expected {n} elements for {name}::{vname}, \
                                          got {{}}\", __arr.len())));\n\
                                 }}\n\
                                 Ok({name}::{vname}({}))\n\
                             }}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fnames) => {
                        let ctor = named_from_object(
                            &format!("{name}::{vname}"),
                            &format!("{name}::{vname}"),
                            fnames,
                            "__inner",
                        );
                        tagged_arms.push_str(&format!("\"{vname}\" => {{ {ctor} }}\n"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<{name}, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => Err(::serde::Error::new(format!(\
                                     \"unknown {name} variant `{{__other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                                 let (__tag, __inner) = (&__pairs[0].0, &__pairs[0].1);\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     __other => Err(::serde::Error::new(format!(\
                                         \"unknown {name} variant `{{__other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(::serde::Error::expected(\
                                 \"externally tagged enum\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Codegen: build `ctor { field: get_field(..)?, .. }` from an object
/// value expression.
fn named_from_object(ctor: &str, ty_label: &str, names: &[String], value_expr: &str) -> String {
    let fields: Vec<String> = names
        .iter()
        .map(|f| format!("{f}: ::serde::get_field(__obj, \"{f}\", \"{ty_label}\")?,"))
        .collect();
    format!(
        "let __obj = {value_expr}.as_object().ok_or_else(|| \
             ::serde::Error::expected(\"object\", {value_expr}))?;\n\
         Ok({ctor} {{ {} }})",
        fields.join("\n")
    )
}
