//! Vendored stand-in for the `half` crate (offline build).
//!
//! Implements the subset UCP uses: `f16`/`bf16` with `from_f32`, `to_f32`,
//! `to_le_bytes`, and `from_le_bytes`. Conversions follow IEEE 754
//! round-to-nearest-even semantics, matching the upstream crate bit-for-bit
//! on finite inputs (including subnormals and overflow-to-infinity), so
//! checkpoint payloads encoded with either implementation are identical.

/// IEEE 754 binary16 (half precision) floating point number.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct f16(u16);

/// bfloat16: truncated-mantissa f32 with round-to-nearest-even.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct bf16(u16);

impl f16 {
    /// Convert an `f32` to binary16 with round-to-nearest-even.
    pub fn from_f32(value: f32) -> f16 {
        f16(f32_to_f16_bits(value))
    }

    /// Widen back to `f32` (exact).
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Raw bits, little-endian.
    pub fn to_le_bytes(self) -> [u8; 2] {
        self.0.to_le_bytes()
    }

    /// Reconstruct from little-endian bits.
    pub fn from_le_bytes(bytes: [u8; 2]) -> f16 {
        f16(u16::from_le_bytes(bytes))
    }

    /// Reinterpret raw bits.
    pub fn from_bits(bits: u16) -> f16 {
        f16(bits)
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }
}

impl bf16 {
    /// Convert an `f32` to bfloat16 with round-to-nearest-even.
    pub fn from_f32(value: f32) -> bf16 {
        bf16(f32_to_bf16_bits(value))
    }

    /// Widen back to `f32` (exact: bf16 is a truncated f32).
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Raw bits, little-endian.
    pub fn to_le_bytes(self) -> [u8; 2] {
        self.0.to_le_bytes()
    }

    /// Reconstruct from little-endian bits.
    pub fn from_le_bytes(bytes: [u8; 2]) -> bf16 {
        bf16(u16::from_le_bytes(bytes))
    }

    /// Reinterpret raw bits.
    pub fn from_bits(bits: u16) -> bf16 {
        bf16(bits)
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }
}

fn f32_to_bf16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    if value.is_nan() {
        // Preserve sign, force a quiet NaN that survives truncation.
        return ((bits >> 16) as u16) | 0x0040;
    }
    // Round-to-nearest-even on the dropped 16 bits.
    let round_bit = (bits >> 15) & 1;
    let lower = bits & 0x7FFF;
    let mut upper = (bits >> 16) as u16;
    if round_bit == 1 && (lower != 0 || (upper & 1) == 1) {
        upper = upper.wrapping_add(1);
    }
    upper
}

fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN. Keep NaN payloads quiet.
        return if mant == 0 {
            sign | 0x7C00
        } else {
            sign | 0x7E00
        };
    }

    // Unbiased exponent; f16 bias is 15, f32 bias is 127.
    let unbiased = exp - 127;
    if unbiased >= 16 {
        // Overflow → infinity.
        return sign | 0x7C00;
    }
    if unbiased >= -14 {
        // Normal range. 13 mantissa bits are dropped.
        let half_exp = ((unbiased + 15) as u16) << 10;
        let half_mant = (mant >> 13) as u16;
        let dropped = mant & 0x1FFF;
        let mut out = sign | half_exp | half_mant;
        // Round to nearest even; a mantissa carry correctly bumps the
        // exponent because the fields are adjacent.
        if dropped > 0x1000 || (dropped == 0x1000 && (out & 1) == 1) {
            out = out.wrapping_add(1);
        }
        return out;
    }
    if unbiased >= -25 {
        // Subnormal range: implicit leading 1 becomes explicit, shifted
        // right by the exponent deficit.
        let full_mant = mant | 0x0080_0000;
        let shift = (-14 - unbiased) as u32 + 13;
        let half_mant = (full_mant >> shift) as u16;
        let dropped = full_mant & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut out = sign | half_mant;
        if dropped > halfway || (dropped == halfway && (out & 1) == 1) {
            out = out.wrapping_add(1);
        }
        return out;
    }
    // Underflow → signed zero.
    sign
}

fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let mant = (bits & 0x03FF) as u32;
    let out = if exp == 0x1F {
        // Inf / NaN.
        sign | 0x7F80_0000 | (mant << 13)
    } else if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: renormalize.
            let mut e = -1i32;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                e += 1;
            }
            let exp32 = (127 - 15 - e) as u32;
            sign | (exp32 << 23) | ((m & 0x03FF) << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_exact_values_roundtrip() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0] {
            assert_eq!(f16::from_f32(v).to_f32(), v, "{v}");
        }
    }

    #[test]
    fn f16_saturates_to_infinity() {
        assert_eq!(f16::from_f32(1e9).to_f32(), f32::INFINITY);
        assert_eq!(f16::from_f32(-1e9).to_f32(), f32::NEG_INFINITY);
        assert_eq!(f16::from_f32(65520.0).to_f32(), f32::INFINITY);
    }

    #[test]
    fn f16_subnormals() {
        // Smallest positive subnormal: 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f16::from_f32(tiny).to_f32(), tiny);
        // Below half the smallest subnormal rounds to zero.
        assert_eq!(f16::from_f32(2.0f32.powi(-26)).to_f32(), 0.0);
    }

    #[test]
    fn f16_round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16; ties
        // go to even (1.0).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f16::from_f32(halfway).to_f32(), 1.0);
        // 1 + 3*2^-11 is halfway between nextafter(1) and the one after;
        // ties to even picks the larger (even mantissa).
        let halfway_up = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(f16::from_f32(halfway_up).to_f32(), 1.0 + 2.0f32.powi(-9));
    }

    #[test]
    fn f16_nan_stays_nan() {
        assert!(f16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn bf16_truncates_with_rounding() {
        assert_eq!(bf16::from_f32(1.0).to_f32(), 1.0);
        // bf16 keeps 8 mantissa bits: 1 + eps_f32 rounds back to 1.
        assert_eq!(bf16::from_f32(1.0 + f32::EPSILON).to_f32(), 1.0);
        assert!(bf16::from_f32(f32::NAN).to_f32().is_nan());
        assert_eq!(bf16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
    }

    #[test]
    fn le_bytes_roundtrip() {
        let h = f16::from_f32(3.14159);
        assert_eq!(f16::from_le_bytes(h.to_le_bytes()), h);
        let b = bf16::from_f32(3.14159);
        assert_eq!(bf16::from_le_bytes(b.to_le_bytes()), b);
    }
}
