//! Vendored stand-in for `criterion` (offline build).
//!
//! A minimal wall-clock benchmark harness exposing the API surface UCP's
//! benches use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `b.iter`, `criterion_group!`/`criterion_main!`). No
//! statistical analysis or HTML reports: each benchmark runs a warmup
//! pass, then `sample_size` timed samples of an adaptively chosen
//! iteration count, and prints min/median/mean per iteration. Honors
//! `--bench` (ignored) and a substring filter argument like criterion's
//! CLI so `cargo bench <name>` still narrows the run.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (re-export of
/// `std::hint::black_box` under criterion's name).
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Per-iteration nanoseconds, one entry per sample.
    results: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, recording `samples` samples. The iteration count
    /// per sample is calibrated so one sample takes ≥ ~5 ms (or a single
    /// iteration for slow routines).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration.
        let t0 = Instant::now();
        std_black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(5).as_nanos() / once.as_nanos()).max(1) as usize;

        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            self.results
                .push(elapsed.as_nanos() as f64 / per_sample as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        results: Vec::new(),
    };
    f(&mut b);
    if b.results.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let mut sorted = b.results.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean: f64 = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{label:<40} min {:>12}  med {:>12}  mean {:>12}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
}

/// Benchmark driver. Collects CLI filter state; benchmarks run eagerly as
/// they are registered.
pub struct Criterion {
    filter: Option<String>,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Positional non-flag args act as a name filter, mirroring
        // `cargo bench <filter>`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            default_samples: 10,
        }
    }
}

impl Criterion {
    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: None,
        }
    }

    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        if self.matches(name) {
            run_one(name, self.default_samples, &mut f);
        }
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = Some(samples);
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        if self.criterion.matches(&label) {
            let samples = self.samples.unwrap_or(self.criterion.default_samples);
            run_one(&label, samples, f);
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(&id.into().0, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.name, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` and [`BenchmarkId`] where a bench name is needed.
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> BenchId {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> BenchId {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> BenchId {
        BenchId(id.name)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: 3,
            results: Vec::new(),
        };
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            black_box(n)
        });
        assert_eq!(b.results.len(), 3);
        assert!(b.results.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            filter: None,
            default_samples: 2,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with", 4), &4u32, |b, &x| b.iter(|| x * 2));
        group.bench_function(BenchmarkId::from_parameter(9), |b| b.iter(|| 9));
        group.finish();
        c.bench_function("top", |b| b.iter(|| 0));
    }
}
