//! Vendored stand-in for `parking_lot` (offline build).
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns a guard directly (a poisoned std lock is recovered
//! rather than propagated, matching parking_lot's behavior of not
//! poisoning at all).

use std::sync::{self, PoisonError};

/// A mutual exclusion primitive. `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with non-poisoning guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guard_derefs_mutably() {
        let m = Mutex::new(vec![0u32; 3]);
        m.lock()[1] = 7;
        assert_eq!(*m.lock(), vec![0, 7, 0]);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(5u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
